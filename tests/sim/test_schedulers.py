"""Scheduler backends: heap/calendar differential identity + pooling.

The determinism contract says the scheduler backend is invisible: the
same schedule pops in the same (time, priority, sequence) order from
either backend, bit for bit.  These tests drive both backends with
identical random workloads — including ones sized to force calendar
grows, shrinks, and sparse-jump repositioning — and require identical
execution traces.  A second group pins the transient-event pool: a
cancelled transient's callback must never fire after recycling.
"""

import random

import pytest

from repro.sim.engine import Engine, default_scheduler, set_default_scheduler
from repro.sim.event import EventPriority
from repro.sim.schedulers import make_scheduler, scheduler_kinds


def _run_random_schedule(kind, seed, initial=200, churn=400, spread=50_000):
    """Execute a randomized self-rescheduling workload; return the trace.

    Each callback appends (now, tag) and with some probability schedules
    more work, so the backend is exercised both from outside run() and
    from inside the hot drain loop.
    """
    rng = random.Random(seed)
    engine = Engine(scheduler=kind)
    trace = []
    budget = [churn]

    def fire(tag):
        trace.append((engine.now, tag))
        if budget[0] > 0 and rng.random() < 0.6:
            budget[0] -= 1
            delay = rng.choice((0, rng.randrange(1, 100), rng.randrange(1, spread)))
            priority = rng.choice(
                (EventPriority.INTERRUPT, EventPriority.SCHEDULER, EventPriority.NORMAL)
            )
            engine.schedule_after(delay, lambda t=f"{tag}.{budget[0]}": fire(t), priority)

    for index in range(initial):
        when = rng.randrange(spread)
        priority = rng.choice(tuple(EventPriority))
        engine.schedule_at(when, lambda t=str(index): fire(t), priority)
    engine.run()
    return trace


class TestDifferentialPopOrder:
    @pytest.mark.parametrize("seed", range(8))
    def test_heap_and_calendar_traces_identical(self, seed):
        heap_trace = _run_random_schedule("heap", seed)
        calendar_trace = _run_random_schedule("calendar", seed)
        assert heap_trace == calendar_trace

    def test_identical_across_resize_pressure(self):
        # Enough events to push the calendar through grow rebuilds, then
        # a drain to trigger shrink checks — the trace must not notice.
        traces = {}
        for kind in scheduler_kinds():
            rng = random.Random(99)
            engine = Engine(scheduler=kind)
            trace = []
            for index in range(5000):
                when = rng.randrange(1_000_000)
                engine.schedule_at(when, lambda t=index: trace.append((engine.now, t)))
            engine.run()
            traces[kind] = trace
        assert traces["heap"] == traces["calendar"]

    def test_identical_with_clustered_then_sparse_times(self):
        # A dense cluster followed by far-future stragglers exercises the
        # sparse-calendar direct jump (the cursor must land on the
        # *earliest* pending window, not the latest).
        traces = {}
        for kind in scheduler_kinds():
            engine = Engine(scheduler=kind)
            trace = []
            for index in range(64):
                engine.schedule_at(index, lambda t=index: trace.append((engine.now, t)))
            for index, when in enumerate((10**9, 5 * 10**9, 2 * 10**9)):
                engine.schedule_at(
                    when, lambda t=f"far{index}": trace.append((engine.now, t))
                )
            engine.run()
            traces[kind] = trace
        assert traces["heap"] == traces["calendar"]

    @pytest.mark.parametrize("kind", ["heap", "calendar"])
    def test_raw_scheduler_pops_sorted(self, kind):
        from repro.sim.event import Event

        rng = random.Random(3)
        sched = make_scheduler(kind)
        events = [
            Event(
                time=rng.randrange(100_000),
                priority=rng.choice((0, 10, 20)),
                sequence=sequence,
                callback=lambda: None,
            )
            for sequence in range(1000)
        ]
        for event in events:
            sched.push(event)
        popped = []
        while True:
            event = sched.pop_due(None)
            if event is None:
                break
            popped.append(event)
        assert popped == sorted(events)


class TestChaosByteIdentity:
    def test_chaos_output_identical_under_both_schedulers(self):
        from repro.experiments.chaos import ChaosConfig, render_chaos, run_chaos

        outputs = {}
        original = default_scheduler()
        for kind in scheduler_kinds():
            set_default_scheduler(kind)
            try:
                result = run_chaos(ChaosConfig(hosts=2, requests=120, seed=5))
                outputs[kind] = render_chaos(result)
            finally:
                set_default_scheduler(original)
        assert outputs["heap"] == outputs["calendar"]


class TestTransientPool:
    @pytest.mark.parametrize("kind", ["heap", "calendar"])
    def test_cancelled_transient_callback_never_resurrects(self, kind):
        """Recycling must not let a stale handle re-arm its old callback.

        Cancel transient events mid-run, then schedule enough new
        transients to cycle the pool; the cancelled callbacks must stay
        dead and every pooled reuse must bump the generation counter.
        """
        engine = Engine(scheduler=kind)
        fired = []
        poisoned = []

        def seed_events():
            stale = []
            for index in range(50):
                engine.schedule_transient_after(
                    10 + index, lambda t=index: poisoned.append(t)
                )
            # Grab the pending transients and cancel every one of them.
            for event in engine.pending_events():
                if event.transient:
                    stale.append((event, event.generation))
                    event.cancel()
            # Recycle pressure: reuse pooled events for live callbacks.
            for index in range(200):
                engine.schedule_transient_after(
                    20 + index, lambda t=index: fired.append(t)
                )
            for event, generation in stale:
                if not event.cancelled:  # reused for a live callback
                    assert event.generation > generation

        engine.schedule_at(0, seed_events)
        engine.run()
        assert poisoned == []
        assert sorted(fired) == list(range(200))

    def test_pool_reuse_bumps_generation(self):
        engine = Engine()
        holder = []
        engine.schedule_transient_after(1, lambda: None)
        engine.run()
        assert len(engine._pool) == 1
        recycled = engine._pool[-1]
        generation = recycled.generation
        engine.schedule_transient_after(1, lambda: holder.append(True))
        assert recycled.generation == generation + 1
        engine.run()
        assert holder == [True]

    def test_pool_capacity_is_bounded(self):
        engine = Engine()
        for index in range(6000):
            engine.schedule_transient_after(index, lambda: None)
        engine.run()
        assert len(engine._pool) <= 4096


class TestDefaultSchedulerSelection:
    def test_set_default_scheduler_round_trip(self):
        # The calendar queue is the process default (>2x on the chaos
        # profile); the heap stays available as the reference backend.
        assert default_scheduler() == "calendar"
        try:
            previous = set_default_scheduler("heap")
            assert previous == "calendar"
            assert Engine().scheduler == "heap"
        finally:
            set_default_scheduler("calendar")
        assert Engine().scheduler == "calendar"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            Engine(scheduler="fibonacci")
        with pytest.raises(ValueError):
            set_default_scheduler("fibonacci")
