"""SimClock: monotonicity and construction."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.errors import SchedulingInPastError


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_custom_start(self):
        assert SimClock(start=500).now == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1)

    def test_advance_forward(self):
        clock = SimClock()
        clock.advance_to(100)
        assert clock.now == 100

    def test_advance_to_same_time_ok(self):
        clock = SimClock(start=10)
        clock.advance_to(10)
        assert clock.now == 10

    def test_advance_backwards_raises(self):
        clock = SimClock(start=100)
        with pytest.raises(SchedulingInPastError):
            clock.advance_to(99)

    def test_repr_shows_time(self):
        assert "42" in repr(SimClock(start=42))
