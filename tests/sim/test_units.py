"""Unit conversions: exactness, rounding, formatting."""

import pytest

from repro.sim.units import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    format_duration,
    microseconds,
    milliseconds,
    nanoseconds,
    seconds,
    to_microseconds,
    to_milliseconds,
    to_seconds,
)


class TestConstants:
    def test_microsecond_is_1000_ns(self):
        assert MICROSECOND == 1_000

    def test_millisecond_is_1e6_ns(self):
        assert MILLISECOND == 1_000_000

    def test_second_is_1e9_ns(self):
        assert SECOND == 1_000_000_000


class TestConversions:
    def test_nanoseconds_identity(self):
        assert nanoseconds(150) == 150

    def test_nanoseconds_rounds(self):
        assert nanoseconds(149.6) == 150

    def test_microseconds(self):
        assert microseconds(1.1) == 1100

    def test_milliseconds(self):
        assert milliseconds(1.3) == 1_300_000

    def test_seconds(self):
        assert seconds(1.5) == 1_500_000_000

    def test_all_return_int(self):
        for value in (microseconds(0.5), milliseconds(0.25), seconds(0.1)):
            assert isinstance(value, int)

    def test_roundtrip_microseconds(self):
        assert to_microseconds(microseconds(17)) == pytest.approx(17.0)

    def test_roundtrip_milliseconds(self):
        assert to_milliseconds(milliseconds(2.5)) == pytest.approx(2.5)

    def test_roundtrip_seconds(self):
        assert to_seconds(seconds(1.5)) == pytest.approx(1.5)


class TestFormatDuration:
    def test_nanoseconds(self):
        assert format_duration(150) == "150 ns"

    def test_microseconds(self):
        assert format_duration(1100) == "1.10 us"

    def test_milliseconds(self):
        assert format_duration(1_300_000) == "1.30 ms"

    def test_seconds(self):
        assert format_duration(1_500_000_000) == "1.50 s"

    def test_negative(self):
        assert format_duration(-1100) == "-1.10 us"

    def test_zero(self):
        assert format_duration(0) == "0 ns"
