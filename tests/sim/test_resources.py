"""SimLock / SimSemaphore semantics."""

import pytest

from repro.sim.engine import Engine
from repro.sim.errors import ResourceError
from repro.sim.resources import SimLock, SimSemaphore


@pytest.fixture
def engine():
    return Engine()


class TestSimLock:
    def test_try_acquire_free_lock(self, engine):
        lock = SimLock(engine)
        assert lock.try_acquire("a") is True
        assert lock.locked
        assert lock.owner == "a"

    def test_try_acquire_held_lock_fails(self, engine):
        lock = SimLock(engine)
        lock.try_acquire("a")
        assert lock.try_acquire("b") is False
        assert lock.owner == "a"

    def test_none_owner_rejected(self, engine):
        with pytest.raises(ResourceError):
            SimLock(engine).try_acquire(None)

    def test_release_frees_lock(self, engine):
        lock = SimLock(engine)
        lock.try_acquire("a")
        lock.release("a")
        assert not lock.locked

    def test_release_unheld_raises(self, engine):
        with pytest.raises(ResourceError):
            SimLock(engine).release("a")

    def test_release_by_non_owner_raises(self, engine):
        lock = SimLock(engine)
        lock.try_acquire("a")
        with pytest.raises(ResourceError):
            lock.release("b")

    def test_acquire_wait_immediate_when_free(self, engine):
        lock = SimLock(engine)
        gate = lock.acquire_wait("a")
        assert lock.owner == "a"
        assert gate.fire_count == 1

    def test_fifo_handoff_on_release(self, engine):
        lock = SimLock(engine)
        lock.try_acquire("a")
        order = []
        gate_b = lock.acquire_wait("b")
        gate_c = lock.acquire_wait("c")
        gate_b.add_waiter(lambda owner: order.append(owner))
        gate_c.add_waiter(lambda owner: order.append(owner))
        lock.release("a")
        assert lock.owner == "b"
        lock.release("b")
        assert lock.owner == "c"
        engine.run()
        assert order == ["b", "c"]

    def test_contention_counter(self, engine):
        lock = SimLock(engine)
        lock.try_acquire("a")
        lock.acquire_wait("b")
        assert lock.contentions == 1
        assert lock.acquisitions == 1


class TestSimSemaphore:
    def test_initial_permits(self, engine):
        assert SimSemaphore(engine, 3).available == 3

    def test_negative_permits_rejected(self, engine):
        with pytest.raises(ResourceError):
            SimSemaphore(engine, -1)

    def test_try_acquire_decrements(self, engine):
        sem = SimSemaphore(engine, 2)
        assert sem.try_acquire()
        assert sem.available == 1

    def test_try_acquire_exhausted_fails(self, engine):
        sem = SimSemaphore(engine, 0)
        assert sem.try_acquire() is False

    def test_release_without_waiters_increments(self, engine):
        sem = SimSemaphore(engine, 0)
        sem.release()
        assert sem.available == 1

    def test_release_wakes_fifo_waiter(self, engine):
        sem = SimSemaphore(engine, 0)
        woken = []
        sem.acquire_wait().add_waiter(lambda _: woken.append("first"))
        sem.acquire_wait().add_waiter(lambda _: woken.append("second"))
        sem.release()
        engine.run()
        assert woken == ["first"]
        sem.release()
        engine.run()
        assert woken == ["first", "second"]

    def test_acquire_wait_with_permits_fires_immediately(self, engine):
        sem = SimSemaphore(engine, 1)
        gate = sem.acquire_wait()
        assert gate.fire_count == 1
        assert sem.available == 0
