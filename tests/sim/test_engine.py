"""Engine: event ordering, priorities, cancellation, run semantics."""

import pytest

from repro.sim.engine import Engine
from repro.sim.errors import EngineStoppedError, SchedulingInPastError
from repro.sim.event import EventPriority


class TestScheduling:
    def test_schedule_at_runs_callback(self):
        engine = Engine()
        fired = []
        engine.schedule_at(10, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [10]

    def test_schedule_after_offsets_from_now(self):
        engine = Engine()
        fired = []
        engine.schedule_at(5, lambda: engine.schedule_after(7, lambda: fired.append(engine.now)))
        engine.run()
        assert fired == [12]

    def test_schedule_in_past_rejected(self):
        engine = Engine()
        engine.schedule_at(10, lambda: None)
        engine.run()
        with pytest.raises(SchedulingInPastError):
            engine.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingInPastError):
            Engine().schedule_after(-1, lambda: None)

    def test_events_fire_in_time_order(self):
        engine = Engine()
        order = []
        for when in (30, 10, 20):
            engine.schedule_at(when, lambda when=when: order.append(when))
        engine.run()
        assert order == [10, 20, 30]

    def test_fifo_among_equal_time_and_priority(self):
        engine = Engine()
        order = []
        for tag in ("a", "b", "c"):
            engine.schedule_at(5, lambda tag=tag: order.append(tag))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        engine = Engine()
        order = []
        engine.schedule_at(5, lambda: order.append("normal"), EventPriority.NORMAL)
        engine.schedule_at(5, lambda: order.append("sched"), EventPriority.SCHEDULER)
        engine.schedule_at(5, lambda: order.append("irq"), EventPriority.INTERRUPT)
        engine.run()
        assert order == ["irq", "sched", "normal"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule_at(10, lambda: fired.append(1))
        event.cancel()
        engine.run()
        assert fired == []

    def test_cancel_does_not_disturb_others(self):
        engine = Engine()
        fired = []
        event = engine.schedule_at(10, lambda: fired.append("a"))
        engine.schedule_at(10, lambda: fired.append("b"))
        event.cancel()
        engine.run()
        assert fired == ["b"]

    def test_peek_skips_cancelled(self):
        engine = Engine()
        event = engine.schedule_at(10, lambda: None)
        engine.schedule_at(20, lambda: None)
        event.cancel()
        assert engine.peek_next_time() == 20


class TestRunSemantics:
    def test_run_until_stops_before_later_events(self):
        engine = Engine()
        fired = []
        engine.schedule_at(10, lambda: fired.append(10))
        engine.schedule_at(50, lambda: fired.append(50))
        engine.run(until=30)
        assert fired == [10]
        assert engine.now == 30

    def test_run_until_advances_clock_when_heap_drains(self):
        engine = Engine()
        engine.run(until=100)
        assert engine.now == 100

    def test_back_to_back_until_windows_tile(self):
        engine = Engine()
        fired = []
        engine.schedule_at(25, lambda: fired.append(25))
        engine.run(until=20)
        engine.run(until=40)
        assert fired == [25]
        assert engine.now == 40

    def test_event_at_until_boundary_fires(self):
        engine = Engine()
        fired = []
        engine.schedule_at(30, lambda: fired.append(30))
        engine.run(until=30)
        assert fired == [30]

    def test_max_events_limits_execution(self):
        engine = Engine()
        fired = []
        for when in (1, 2, 3):
            engine.schedule_at(when, lambda when=when: fired.append(when))
        executed = engine.run(max_events=2)
        assert executed == 2
        assert fired == [1, 2]

    def test_step_fires_one_event(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1, lambda: fired.append(1))
        engine.schedule_at(2, lambda: fired.append(2))
        assert engine.step() is True
        assert fired == [1]

    def test_step_on_empty_heap_returns_false(self):
        assert Engine().step() is False

    def test_run_returns_executed_count(self):
        engine = Engine()
        for when in range(5):
            engine.schedule_at(when, lambda: None)
        assert engine.run() == 5
        assert engine.events_executed == 5

    def test_events_scheduled_during_run_fire(self):
        engine = Engine()
        fired = []
        engine.schedule_at(
            1, lambda: engine.schedule_after(1, lambda: fired.append(engine.now))
        )
        engine.run()
        assert fired == [2]

    def test_stopped_engine_rejects_everything(self):
        engine = Engine()
        engine.stop()
        with pytest.raises(EngineStoppedError):
            engine.schedule_at(1, lambda: None)
        with pytest.raises(EngineStoppedError):
            engine.run()

    def test_pending_events_snapshot(self):
        engine = Engine()
        engine.schedule_at(1, lambda: None)
        event = engine.schedule_at(2, lambda: None)
        event.cancel()
        assert len(list(engine.pending_events())) == 1

    def test_pending_events_sorted_in_firing_order(self):
        # Contract: the snapshot is ordered by (time, priority, sequence)
        # — the exact drain order — on every scheduler backend, and
        # mutating it does not disturb the engine.
        for kind in ("heap", "calendar"):
            engine = Engine(scheduler=kind)
            for when in (30, 10, 20, 10, 30):
                engine.schedule_at(when, lambda: None)
            engine.schedule_at(10, lambda: None, EventPriority.INTERRUPT)
            snapshot = engine.pending_events()
            keys = [(e.time, e.priority, e.sequence) for e in snapshot]
            assert keys == sorted(keys)
            assert [e.time for e in snapshot] == [10, 10, 10, 20, 30, 30]
            assert snapshot[0].priority == EventPriority.INTERRUPT
            snapshot.clear()  # caller-owned copy
            assert len(engine.pending_events()) == 6


class TestDeterminism:
    def test_identical_schedules_produce_identical_traces(self):
        def run_once():
            engine = Engine()
            trace = []
            for when in (5, 3, 3, 8):
                engine.schedule_at(when, lambda when=when: trace.append((engine.now, when)))
            engine.run()
            return trace

        assert run_once() == run_once()
