"""Seeded RNG streams: determinism and independence."""

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(42).stream("x")
        b = RngRegistry(42).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        registry = RngRegistry(42)
        a = registry.stream("alpha")
        b = registry.stream("beta")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x")
        b = RngRegistry(2).stream("x")
        assert a.random() != b.random()

    def test_stream_is_cached(self):
        registry = RngRegistry(0)
        assert registry.stream("x") is registry.stream("x")

    def test_draw_from_one_stream_does_not_shift_another(self):
        r1 = RngRegistry(7)
        r1.stream("noise").random()
        r1.stream("noise").random()
        value_after_noise = r1.stream("signal").random()

        r2 = RngRegistry(7)
        value_clean = r2.stream("signal").random()
        assert value_after_noise == value_clean

    def test_fork_is_deterministic(self):
        a = RngRegistry(3).fork("rep-1").stream("x").random()
        b = RngRegistry(3).fork("rep-1").stream("x").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(3)
        child = parent.fork("rep-1")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_forks_with_different_salts_differ(self):
        root = RngRegistry(3)
        assert (
            root.fork("rep-1").stream("x").random()
            != root.fork("rep-2").stream("x").random()
        )
