"""Property tests on the event engine: ordering and conservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.event import EventPriority


class TestEngineProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),  # time
                st.sampled_from(list(EventPriority)),         # priority
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_firing_order_is_time_then_priority_then_fifo(self, schedule):
        engine = Engine()
        fired = []
        for sequence, (when, priority) in enumerate(schedule):
            engine.schedule_at(
                when,
                lambda when=when, priority=priority, sequence=sequence: fired.append(
                    (when, int(priority), sequence)
                ),
                priority=priority,
            )
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(schedule)

    @given(
        st.lists(st.integers(min_value=0, max_value=1_000), max_size=40),
        st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=60)
    def test_run_until_splits_are_equivalent_to_one_run(self, times, split):
        """Running to `split` then to the horizon fires exactly what a
        single run to the horizon fires, in the same order."""
        def run(split_point):
            engine = Engine()
            fired = []
            for when in times:
                engine.schedule_at(when, lambda when=when: fired.append(when))
            if split_point is not None:
                engine.run(until=split_point)
            engine.run(until=1_001)
            return fired

        assert run(split) == run(None)

    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_clock_never_exceeds_last_event_on_unbounded_run(self, times):
        engine = Engine()
        for when in times:
            engine.schedule_at(when, lambda: None)
        engine.run()
        assert engine.now == max(times)

    @given(
        st.lists(st.integers(min_value=0, max_value=100), max_size=20),
        st.data(),
    )
    @settings(max_examples=40)
    def test_cancellation_removes_exactly_the_cancelled(self, times, data):
        engine = Engine()
        fired = []
        events = [
            engine.schedule_at(when, lambda i=i: fired.append(i))
            for i, when in enumerate(times)
        ]
        cancel_set = set()
        if events:
            cancel_set = set(
                data.draw(
                    st.lists(
                        st.integers(0, len(events) - 1),
                        max_size=len(events),
                        unique=True,
                    )
                )
            )
        for index in cancel_set:
            events[index].cancel()
        engine.run()
        assert sorted(fired) == sorted(
            i for i in range(len(events)) if i not in cancel_set
        )
