"""Calendar-queue grow/shrink rebuilds under adversarial distributions.

The calendar scheduler's amortized-O(1) claim rests on its resize
policy: grow when occupancy passes two events per bucket, shrink when
it drops below a quarter, re-deriving the bucket width from the spacing
of events near the head (Brown's heuristic).  These tests drive the
resize machinery with the distributions that historically break
calendar queues — everything at one instant (degenerate width sample),
a handful of events separated by enormous dead time (sparse-calendar
jump), and grow-then-shrink churn — and pin that every rebuild
preserves the exact ``(time, priority, sequence)`` drain order the
differential suite guarantees against the heap.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.event import Event, EventPriority
from repro.sim.schedulers import (
    _MIN_BUCKETS,
    CalendarScheduler,
    HeapScheduler,
)


def _events(times, priority=int(EventPriority.NORMAL)):
    return [
        Event(time, priority, sequence, callback=None)
        for sequence, time in enumerate(times)
    ]


def _drain_all(scheduler):
    out = []
    while True:
        event = scheduler.pop_due(None)
        if event is None:
            return out
        out.append((event.time, event.priority, event.sequence))


def _reference_order(events):
    heap = HeapScheduler()
    for event in events:
        heap.push(event)
    # Heap events are the same objects; drain a fresh copy for the key
    # tuple stream only.
    return [
        (event.time, event.priority, event.sequence)
        for event in sorted(events)
    ]


class TestGrowRebuild:
    def test_bucket_count_grows_past_two_per_bucket(self):
        scheduler = CalendarScheduler()
        assert scheduler._mask + 1 == _MIN_BUCKETS
        for event in _events(range(0, 40_000, 1_000)):  # 40 > 2 * 16
            scheduler.push(event)
        assert scheduler._mask + 1 > _MIN_BUCKETS
        assert scheduler._epoch >= 1

    def test_grow_preserves_drain_order(self):
        times = [t * 977 for t in range(200)]  # forces several doublings
        events = _events(times)
        scheduler = CalendarScheduler()
        for event in events:
            scheduler.push(event)
        assert _drain_all(scheduler) == _reference_order(events)

    def test_all_events_at_one_instant_grow_without_width_collapse(self):
        """Degenerate width sample: every gap is zero, so the heuristic
        must fall back to the current width instead of dividing by zero
        or shrinking the width to nothing."""
        events = _events([7_777] * 300)
        scheduler = CalendarScheduler()
        for event in events:
            scheduler.push(event)
        assert scheduler._width >= 1
        assert scheduler._epoch >= 1  # it did grow (300 > 2 * 16)
        drained = _drain_all(scheduler)
        assert drained == _reference_order(events)
        # FIFO among equal (time, priority): sequence strictly ascends.
        assert [entry[2] for entry in drained] == sorted(
            entry[2] for entry in drained
        )


class TestShrinkRebuild:
    def _grown(self, count=600, spacing=1_000):
        events = _events(range(0, count * spacing, spacing))
        scheduler = CalendarScheduler()
        for event in events:
            scheduler.push(event)
        return scheduler, events

    def test_bucket_count_shrinks_as_the_queue_drains(self):
        scheduler, events = self._grown()
        grown = scheduler._mask + 1
        assert grown > _MIN_BUCKETS
        order = _drain_all(scheduler)
        assert order == _reference_order(events)
        # Fully drained: the shrink path must have walked the count back
        # down (it can never go below the floor).
        assert _MIN_BUCKETS <= scheduler._mask + 1 < grown

    def test_shrink_never_goes_below_minimum(self):
        scheduler, _events_list = self._grown(count=100)
        _drain_all(scheduler)
        assert scheduler._mask + 1 >= _MIN_BUCKETS

    def test_interleaved_grow_shrink_churn_keeps_total_order(self):
        """Push bursts and drain bursts alternating across the resize
        thresholds — the adversarial schedule for rebuild bookkeeping
        (cursor/horizon must survive every epoch bump)."""
        rng = random.Random(42)
        scheduler = CalendarScheduler()
        live = []
        sequence = 0
        drained = []
        epochs = set()
        for _burst in range(20):
            for _ in range(rng.randrange(10, 120)):
                time = rng.choice(
                    [rng.randrange(100), rng.randrange(10**9), 5_000_000]
                )
                event = Event(time, int(EventPriority.NORMAL), sequence, None)
                sequence += 1
                scheduler.push(event)
                live.append(event)
            epochs.add(scheduler._epoch)
            for _ in range(rng.randrange(5, 100)):
                event = scheduler.pop_due(None)
                if event is None:
                    break
                drained.append(event)
            epochs.add(scheduler._epoch)
        drained.extend(_drain_all_events(scheduler))
        assert len(epochs) > 1  # the churn actually crossed rebuilds
        assert sorted(e.sequence for e in drained) == list(range(sequence))
        # Each pop returned the global minimum at the time of the pop:
        # replaying pushes/pops against a heap is the real differential
        # test (tests/sim/test_schedulers.py); here we pin the cheap
        # necessary condition that survives interleaving — every drained
        # prefix is <= everything still pending when it popped.
        assert _is_pop_order_consistent(drained, live)


def _drain_all_events(scheduler):
    out = []
    while True:
        event = scheduler.pop_due(None)
        if event is None:
            return out
        out.append(event)


def _is_pop_order_consistent(drained, live):
    """Weaker-but-interleaving-safe order check: among events pushed
    before it (lower sequence), nothing strictly earlier may pop later."""
    popped_at = {event.sequence: index for index, event in enumerate(drained)}
    for index, event in enumerate(drained):
        for other in drained[index + 1 :]:
            if other.sequence < event.sequence and other < event:
                return False
    return len(popped_at) == len(drained)


class TestSparseCalendar:
    def test_far_apart_clusters_use_the_direct_jump(self):
        """Two dense clusters separated by ~a simulated day: advancing
        bucket-by-bucket would be O(dead time / width); the sparse-scan
        fallback must jump directly."""
        cluster_a = list(range(0, 1_000, 10))
        cluster_b = list(range(86_400_000_000_000, 86_400_000_001_000, 10))
        events = _events(cluster_a + cluster_b)
        scheduler = CalendarScheduler()
        for event in events:
            scheduler.push(event)
        assert _drain_all(scheduler) == _reference_order(events)

    def test_single_distant_event_after_rebuild(self):
        scheduler = CalendarScheduler()
        for event in _events(range(0, 50_000, 100)):  # force a grow
            scheduler.push(event)
        _drain_all(scheduler)
        lonely = Event(10**15, int(EventPriority.NORMAL), 10_000, None)
        scheduler.push(lonely)
        assert scheduler.peek() is lonely
        assert scheduler.pop_due(None) is lonely
        assert scheduler.pop_due(None) is None


class TestRebuildBookkeeping:
    def test_rebuild_preserves_size_and_pending_set(self):
        events = _events([3, 3, 3, 50_000, 1_000_000_007, 12])
        scheduler = CalendarScheduler()
        for event in events:
            scheduler.push(event)
        before = {id(event) for event in scheduler.iter_pending()}
        scheduler._rebuild(64, 500)
        assert len(scheduler) == len(events)
        assert {id(event) for event in scheduler.iter_pending()} == before
        assert _drain_all(scheduler) == _reference_order(events)

    def test_rebuild_bumps_epoch_and_repoints_cursor(self):
        events = _events([40_960, 40_961])
        scheduler = CalendarScheduler()
        for event in events:
            scheduler.push(event)
        epoch = scheduler._epoch
        scheduler._rebuild(32, 100)
        assert scheduler._epoch == epoch + 1
        # The window must cover the earliest pending event.
        assert scheduler._horizon > 40_960
        assert scheduler.pop_due(None).time == 40_960

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError, match="width"):
            CalendarScheduler(width=0)
        with pytest.raises(ValueError, match="power of two"):
            CalendarScheduler(buckets=24)


class TestResizeProperties:
    @given(
        times=st.lists(
            st.one_of(
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=0, max_value=10**12),
                st.just(123_456_789),
            ),
            min_size=1,
            max_size=300,
        ),
        priorities=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_drain_order_matches_heap_across_resizes(self, times, priorities):
        """Differential: whatever rebuilds the pushes trigger, the
        calendar's total drain order equals the heap's."""
        choices = [int(p) for p in EventPriority]
        events = [
            Event(
                time,
                priorities.draw(st.sampled_from(choices)),
                sequence,
                None,
            )
            for sequence, time in enumerate(times)
        ]
        calendar = CalendarScheduler()
        heap = HeapScheduler()
        for event in events:
            calendar.push(event)
            heap.push(event)
        calendar_order = _drain_all(calendar)
        heap_order = []
        while True:
            event = heap.pop_due(None)
            if event is None:
                break
            heap_order.append((event.time, event.priority, event.sequence))
        assert calendar_order == heap_order
