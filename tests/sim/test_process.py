"""Processes: sleep/wait/spawn/join semantics over the engine."""

import pytest

from repro.sim.engine import Engine
from repro.sim.errors import ProcessError
from repro.sim.process import Join, Process, Sleep, Spawn, Wait, Waitable, spawn


class TestSleep:
    def test_sleep_advances_time(self):
        engine = Engine()
        times = []

        def proc():
            times.append(engine.now)
            yield Sleep(100)
            times.append(engine.now)

        spawn(engine, proc())
        engine.run()
        assert times == [0, 100]

    def test_consecutive_sleeps_accumulate(self):
        engine = Engine()

        def proc():
            yield Sleep(10)
            yield Sleep(20)
            return engine.now

        process = spawn(engine, proc())
        engine.run()
        assert process.result == 30

    def test_zero_sleep_is_legal(self):
        engine = Engine()

        def proc():
            yield Sleep(0)
            return "done"

        process = spawn(engine, proc())
        engine.run()
        assert process.result == "done"

    def test_negative_sleep_raises(self):
        engine = Engine()

        def proc():
            yield Sleep(-5)

        spawn(engine, proc())
        with pytest.raises(ProcessError):
            engine.run()


class TestWaitables:
    def test_wait_receives_fired_value(self):
        engine = Engine()
        gate = Waitable(engine, "gate")
        received = []

        def waiter():
            value = yield Wait(gate)
            received.append(value)

        spawn(engine, waiter())
        engine.schedule_at(50, lambda: gate.fire("payload"))
        engine.run()
        assert received == ["payload"]

    def test_multiple_waiters_all_wake(self):
        engine = Engine()
        gate = Waitable(engine)
        woken = []

        def waiter(tag):
            yield Wait(gate)
            woken.append(tag)

        for tag in ("a", "b", "c"):
            spawn(engine, waiter(tag))
        engine.schedule_at(10, lambda: gate.fire())
        engine.run()
        assert sorted(woken) == ["a", "b", "c"]

    def test_fire_count_tracks(self):
        engine = Engine()
        gate = Waitable(engine)
        gate.fire(1)
        gate.fire(2)
        assert gate.fire_count == 2
        assert gate.last_value == 2


class TestSpawnJoin:
    def test_spawn_returns_child_process(self):
        engine = Engine()

        def child():
            yield Sleep(5)
            return 42

        def parent():
            proc = yield Spawn(child(), label="child")
            result = yield Join(proc)
            return result

        process = spawn(engine, parent())
        engine.run()
        assert process.result == 42

    def test_join_on_already_done_process(self):
        engine = Engine()

        def child():
            return "early"
            yield  # pragma: no cover

        def parent(child_proc):
            yield Sleep(100)
            result = yield Join(child_proc)
            return result

        child_proc = spawn(engine, child())
        process = spawn(engine, parent(child_proc))
        engine.run()
        assert process.result == "early"

    def test_parallel_children_overlap_in_time(self):
        engine = Engine()

        def child(delay):
            yield Sleep(delay)
            return engine.now

        def parent():
            first = yield Spawn(child(100))
            second = yield Spawn(child(100))
            a = yield Join(first)
            b = yield Join(second)
            return (a, b)

        process = spawn(engine, parent())
        engine.run()
        # Both children slept concurrently: both end ~t=100, not 200.
        assert process.result == (100, 100)


class TestErrors:
    def test_double_start_rejected(self):
        engine = Engine()

        def proc():
            yield Sleep(1)

        process = Process(engine, proc())
        process.start()
        with pytest.raises(ProcessError):
            process.start()

    def test_bad_yield_value_raises(self):
        engine = Engine()

        def proc():
            yield "not a command"

        spawn(engine, proc())
        with pytest.raises(ProcessError):
            engine.run()

    def test_exception_in_process_propagates_and_marks_error(self):
        engine = Engine()

        def proc():
            yield Sleep(1)
            raise RuntimeError("boom")

        process = spawn(engine, proc())
        with pytest.raises(RuntimeError):
            engine.run()
        assert process.done
        assert isinstance(process.error, RuntimeError)

    def test_completion_waitable_fires_with_result(self):
        engine = Engine()

        def child():
            yield Sleep(3)
            return "value"

        child_proc = spawn(engine, child())
        results = []
        child_proc.completion().add_waiter(results.append)
        engine.run()
        assert results == ["value"]
