"""Closed-loop clients built on the process API, driving the FaaS
platform — integration between repro.sim.process and repro.faas."""

from repro.faas import FaaSPlatform, FunctionSpec, StartType
from repro.sim.process import Sleep, Wait, Waitable, spawn
from repro.sim.units import microseconds, seconds
from repro.workloads import FirewallWorkload


def make_platform():
    faas = FaaSPlatform.build("firecracker", seed=23)
    faas.register(FunctionSpec("fw", FirewallWorkload()))
    faas.provision_warm("fw", count=1)
    return faas


class TestClosedLoopClient:
    def test_sequential_client_issues_back_to_back_requests(self):
        """A closed-loop client: trigger, wait for completion, think,
        repeat — the canonical latency-measurement harness."""
        faas = make_platform()
        latencies = []

        def client(requests, think_ns):
            for _ in range(requests):
                done = Waitable(faas.engine, "done")
                invocation = faas.trigger("fw", StartType.HORSE)
                faas.engine.schedule_at(
                    invocation.exec_end_ns, lambda d=done: d.fire()
                )
                yield Wait(done)
                latencies.append(invocation.total_ns)
                yield Sleep(think_ns)
            return len(latencies)

        process = spawn(faas.engine, client(5, microseconds(100)))
        faas.engine.run(until=seconds(1))
        assert process.done and process.result == 5
        assert len(latencies) == 5
        # Closed loop on one warm sandbox: every request hits the pool.
        assert faas.pool.misses == 0

    def test_two_clients_share_one_warm_sandbox(self):
        """With one pooled sandbox and completion-gated clients, the
        sandbox ping-pongs between clients without a miss."""
        faas = make_platform()
        completions = []

        def client(tag):
            for _ in range(3):
                done = Waitable(faas.engine, tag)
                invocation = faas.trigger("fw", StartType.HORSE)
                faas.engine.schedule_at(
                    invocation.exec_end_ns, lambda d=done: d.fire()
                )
                yield Wait(done)
                completions.append(tag)
                # think long enough for the sandbox to be re-pooled
                yield Sleep(microseconds(500))

        spawn(faas.engine, client("a"))
        # stagger the second client so triggers never collide
        faas.engine.schedule_at(
            microseconds(250),
            lambda: spawn(faas.engine, client("b")),
        )
        faas.engine.run(until=seconds(1))
        assert sorted(completions) == ["a", "a", "a", "b", "b", "b"]
        assert faas.pool.misses == 0

    def test_client_observed_latency_matches_invocation(self):
        faas = make_platform()
        observed = {}

        def client():
            start = faas.engine.now
            done = Waitable(faas.engine)
            invocation = faas.trigger("fw", StartType.HORSE)
            faas.engine.schedule_at(
                invocation.exec_end_ns, lambda: done.fire()
            )
            yield Wait(done)
            observed["client_ns"] = faas.engine.now - start
            observed["invocation_ns"] = invocation.total_ns

        spawn(faas.engine, client())
        faas.engine.run(until=seconds(1))
        assert observed["client_ns"] == observed["invocation_ns"]
