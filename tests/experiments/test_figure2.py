"""F2: the resume breakdown reproduces §3.2."""

import pytest

from repro.experiments.figure2 import run_figure2
from repro.hypervisor.pause_resume import (
    HOT_STEPS,
    STEP_LOAD,
    STEP_MERGE,
)


@pytest.fixture(scope="module")
def figure2():
    return run_figure2(vcpu_counts=(1, 8, 36), repetitions=3)


class TestHotStepDominance:
    def test_hot_share_in_paper_band(self, figure2):
        """Paper: steps 4+5 are 87.5 % to 93.1 % of the resume."""
        for point in figure2.points:
            assert 0.86 <= point.hot_share <= 0.94, (
                f"{point.vcpus} vCPUs: {point.hot_share}"
            )

    def test_hot_share_grows_with_vcpus(self, figure2):
        shares = figure2.hot_shares()
        assert shares == sorted(shares)

    def test_merge_dominates_load(self, figure2):
        for point in figure2.points:
            assert point.mean_step_ns[STEP_MERGE] > point.mean_step_ns[STEP_LOAD]


class TestTotals:
    def test_1vcpu_total_near_1_1us(self, figure2):
        assert figure2.point(1).mean_total_ns == pytest.approx(1100, rel=0.05)

    def test_total_grows_with_vcpus(self, figure2):
        totals = [p.mean_total_ns for p in figure2.points]
        assert totals == sorted(totals)

    def test_every_point_has_six_steps(self, figure2):
        for point in figure2.points:
            assert len(point.mean_step_ns) == 6

    def test_shares_sum_to_one(self, figure2):
        for point in figure2.points:
            assert sum(point.step_shares.values()) == pytest.approx(1.0)

    def test_point_lookup(self, figure2):
        assert figure2.point(8).vcpus == 8
        with pytest.raises(KeyError):
            figure2.point(99)
