"""Cluster recovery study: cells, worker invariance, trace, registry.

The control-plane *mechanics* (fencing, replay, parking) are pinned in
``tests/controlplane/``; this file covers the study wrapper — cell
purity, the shard-count invariance of the merged artifact, rendering,
and the registry/CLI surface.
"""

import json

import pytest

from repro.experiments.cluster_recovery import (
    ClusterRecoveryConfig,
    recovery_cell_seed,
    render_recovery,
    run_recovery,
    trace_jsonl,
    write_trace_jsonl,
)
from repro.experiments.registry import all_specs

FAST = ClusterRecoveryConfig(
    groups=2,
    gateways=3,
    hosts=2,
    gateway_failure_rate=0.3,
    requests=120,
    drain_s=10.0,
    deadline_s=5.0,
    seed=5,
)


def _snapshot(config, shards, parallel=None):
    result = run_recovery(config, shards=shards, parallel=parallel)
    return (
        trace_jsonl(result),
        render_recovery(result),
        result.ok,
        tuple(result.oracle_mismatches),
    )


class TestConfig:
    def test_defaults_valid(self):
        ClusterRecoveryConfig()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"groups": 0}, "groups"),
            ({"gateways": 0}, "gateways"),
            ({"hosts": 1}, "hosts"),
            ({"gateway_failure_rate": 1.0}, "gateway_failure_rate"),
            ({"failure_rate": -0.1}, "failure_rate"),
            ({"requests": 0}, "requests"),
            ({"deadline_s": 60.0}, "deadline_s"),  # == drain_s
            ({"deadline_s": 0.0}, "deadline_s"),
        ],
    )
    def test_invalid_arguments_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ClusterRecoveryConfig(**kwargs)

    def test_cell_seeds_distinct_and_pure(self):
        seeds = [recovery_cell_seed(5, group) for group in range(8)]
        assert len(set(seeds)) == 8
        assert seeds == [recovery_cell_seed(5, group) for group in range(8)]


class TestRun:
    def test_fast_run_is_sound_and_oracle_clean(self):
        result = run_recovery(FAST, shards=1)
        assert result.ok
        assert result.oracle_strict and result.oracle_mismatches == []
        total = sum(cell.submitted for cell in result.cells.values())
        assert total == FAST.requests
        # The chaos schedule actually fired: otherwise the oracle is
        # vacuous.
        assert sum(cell.gw_crashes for cell in result.cells.values()) > 0

    def test_oracle_cells_really_ran_without_gateway_failures(self):
        result = run_recovery(FAST, shards=1)
        for cell in result.oracle_cells.values():
            assert cell.gw_crashes == 0
            assert cell.redispatched == 0

    def test_violations_surface_in_result_and_render(self):
        result = run_recovery(FAST, shards=1)
        result.cells[0].violations.append("g0: injected for test")
        assert not result.ok
        assert "UNSOUND" in render_recovery(result)


class TestWorkerInvariance:
    def test_shards_1_2_4_byte_identical(self):
        """Same seed ⇒ byte-identical trace + render for any worker
        count, with gateway crashes enabled (the PR's headline claim)."""
        reference = _snapshot(FAST, shards=1)
        for shards in (2, 4):
            assert _snapshot(FAST, shards=shards, parallel=False) == reference

    def test_real_process_pool_matches_inline(self):
        reference = _snapshot(FAST, shards=1)
        assert _snapshot(FAST, shards=2) == reference

    def test_render_mentions_no_worker_count(self):
        rendered = render_recovery(run_recovery(FAST, shards=2, parallel=False))
        assert "shard" not in rendered.lower().replace("cluster-recovery", "")
        assert "worker" not in rendered.lower()


class TestTrace:
    def test_trace_is_canonical_jsonl(self, tmp_path):
        result = run_recovery(FAST, shards=1)
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(result, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == len(result.records)
        for line in lines:
            record = json.loads(line)
            assert json.dumps(
                record, sort_keys=True, separators=(",", ":")
            ) == line
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "request" in kinds and "gw-crash" in kinds

    def test_every_request_appears_exactly_once(self):
        result = run_recovery(FAST, shards=1)
        origins = sorted(
            record["req"]
            for record in result.records
            if record["kind"] == "request"
        )
        assert origins == list(range(FAST.requests))


class TestRegistry:
    def test_cluster_recovery_spec_registered(self):
        spec = {s.id: s for s in all_specs()}["cluster_recovery"]
        assert "oracle" in spec.title.lower() or "recovery" in spec.title.lower()
        assert spec.fast_estimate_s > 0

    def test_spec_runs_fast_and_reports_rows(self):
        from repro.experiments.registry import ExperimentConfig, get

        spec = get("cluster_recovery")
        result = spec.run(ExperimentConfig(fast=True, seed=2, shards=1))
        rows = result.rows()
        assert rows and all("p99_us" in row for row in rows)
        assert all(row["oracle_ok"] for row in rows)
        assert "cluster-recovery:" in result.summary()


class TestCli:
    def test_gateways_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "chaos", "cluster", "--gateways", "3",
                "--gateway-failure-rate", "0.4", "--failure-rate", "0",
            ]
        )
        assert args.gateways == 3
        assert args.gateway_failure_rate == 0.4

    def test_chaos_gateways_runs_and_writes_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "chaos", "cluster", "--gateways", "2",
                "--gateway-failure-rate", "0.3", "--failure-rate", "0",
                "--groups", "2", "--requests", "80", "--seed", "5",
                "--trace-out", str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster-recovery: groups=2 gateways=2" in out
        assert "oracle: zero-failure twin outcomes identical" in out
        record = json.loads(trace_path.read_text().splitlines()[0])
        assert {"t", "shard", "kind"} <= set(record)

    def test_invalid_gateway_rate_exits_2(self, capsys):
        from repro.cli import main

        code = main(
            ["chaos", "cluster", "--gateways", "2",
             "--gateway-failure-rate", "1.5"]
        )
        assert code == 2
        assert "gateway_failure_rate" in capsys.readouterr().err
