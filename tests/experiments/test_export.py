"""JSON/CSV export of experiment results."""

import csv
import json

import pytest

from repro.analysis.export import (
    colocation_to_json,
    figure2_to_json,
    figure3_to_json,
    figure4_to_json,
    table1_to_json,
    write_csv,
    write_json,
)
from repro.experiments.colocation import run_colocation
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module")
def payloads():
    return {
        "table1": table1_to_json(run_table1(repetitions=2)),
        "figure2": figure2_to_json(run_figure2(vcpu_counts=(1, 8), repetitions=2)),
        "figure3": figure3_to_json(run_figure3(vcpu_counts=(1, 8), repetitions=2)),
        "figure4": figure4_to_json(run_figure4(repetitions=2)),
        "colocation": colocation_to_json(run_colocation(vcpu_counts=(1,))),
    }


class TestPayloadShape:
    def test_every_payload_names_its_artifact(self, payloads):
        for name, payload in payloads.items():
            assert payload["artifact"] == name

    def test_rows_match_columns(self, payloads):
        for payload in payloads.values():
            width = len(payload["columns"])
            assert payload["rows"], payload["artifact"]
            for row in payload["rows"]:
                assert len(row) == width

    def test_payloads_json_serializable(self, payloads):
        for payload in payloads.values():
            json.dumps(payload)

    def test_figure3_covers_all_setups(self, payloads):
        setups = {row[0] for row in payloads["figure3"]["rows"]}
        assert setups == {"vanil", "ppsm", "coal", "horse"}

    def test_table1_has_nine_rows(self, payloads):
        assert len(payloads["table1"]["rows"]) == 9


class TestWriters:
    def test_write_json_roundtrip(self, payloads, tmp_path):
        path = write_json(tmp_path / "t1.json", payloads["table1"])
        loaded = json.loads(path.read_text())
        assert loaded == payloads["table1"]

    def test_write_csv_roundtrip(self, payloads, tmp_path):
        payload = payloads["figure3"]
        path = write_csv(tmp_path / "f3.csv", payload["columns"], payload["rows"])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == payload["columns"]
        assert len(rows) == len(payload["rows"]) + 1

    def test_write_csv_rejects_ragged_rows(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "bad.csv", ["a", "b"], [["only-one"]])
