"""Dispatch-policy zoo: cross-product structure, soundness, determinism."""

import pytest

from repro.experiments.dispatch_zoo import (
    DISPATCH_MIXES,
    DispatchZooConfig,
    dispatch_zoo_rows,
    render_dispatch_zoo,
    run_dispatch_zoo,
)

FAST = DispatchZooConfig(
    hosts=2, requests=80, failure_rates=(0.1,), mixes=("balanced", "accel")
)


@pytest.fixture(scope="module")
def result():
    return run_dispatch_zoo(FAST)


class TestConfig:
    def test_default_policies_are_all_registered_families(self):
        from repro.resilience.policies import DISPATCH_POLICIES

        assert DispatchZooConfig().policies == tuple(
            DISPATCH_POLICIES.families()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DispatchZooConfig(hosts=1)
        with pytest.raises(ValueError):
            DispatchZooConfig(failure_rates=(1.5,))
        with pytest.raises(ValueError):
            DispatchZooConfig(mixes=("nope",))
        with pytest.raises(ValueError):
            DispatchZooConfig(policies=("nope",))


class TestCrossProduct:
    def test_every_cell_present(self, result):
        expected = {
            (policy, rate, mix)
            for mix in FAST.mixes
            for rate in FAST.failure_rates
            for policy in FAST.policies
        }
        assert set(result.cells) == expected

    def test_every_cell_sound(self, result):
        for key, cell in result.cells.items():
            assert cell.ok, (key, cell.violations)
            assert cell.resolved == cell.submitted

    def test_identical_arrival_schedule_across_policies(self, result):
        """Same (mix, rate): every policy sees the same per-class
        submission counts — the schedule is policy-independent."""
        for mix in FAST.mixes:
            for rate in FAST.failure_rates:
                per_policy = [
                    {
                        cls: stats.submitted
                        for cls, stats in result.cell(p, rate, mix).classes.items()
                    }
                    for p in FAST.policies
                ]
                assert all(counts == per_policy[0] for counts in per_policy)

    def test_accel_mix_adds_the_gpu_class(self, result):
        policy = FAST.policies[0]
        rate = FAST.failure_rates[0]
        assert "infer" in result.cell(policy, rate, "accel").classes
        assert "infer" not in result.cell(policy, rate, "balanced").classes

    def test_class_stats_partition_the_cell(self, result):
        for cell in result.cells.values():
            assert sum(s.submitted for s in cell.classes.values()) == (
                cell.submitted
            )
            assert sum(s.completed for s in cell.classes.values()) == (
                cell.completed
            )


class TestDeterminismAndRender:
    def test_same_seed_byte_identical(self):
        small = DispatchZooConfig(
            hosts=2, requests=40, failure_rates=(0.1,), mixes=("balanced",)
        )
        first = render_dispatch_zoo(run_dispatch_zoo(small))
        second = render_dispatch_zoo(run_dispatch_zoo(small))
        assert first == second

    def test_render_has_a_row_per_policy_class(self, result):
        rendered = render_dispatch_zoo(result)
        for policy in FAST.policies:
            assert policy in rendered
        assert "p99 us" in rendered
        assert "UNSOUND" not in rendered

    def test_rows_are_flat_scalars(self, result):
        rows = dispatch_zoo_rows(result)
        assert len(rows) == sum(
            len(cell.classes) for cell in result.cells.values()
        )
        for row in rows:
            assert set(row) == {
                "policy", "failure_rate", "mix", "cls", "submitted",
                "completed", "shed", "failed", "p50_us", "p99_us", "ok",
            }
            for value in row.values():
                assert isinstance(value, (str, int, float, bool))


class TestRegistry:
    def test_fast_registry_run(self):
        from repro.experiments.registry import ExperimentConfig, get

        run = get("dispatch_zoo").run(ExperimentConfig(fast=True, seed=0))
        rows = run.rows()
        assert rows
        assert run.summary().startswith("dispatch zoo:")
        policies = {row["policy"] for row in rows}
        assert policies == set(DispatchZooConfig().policies)

    def test_mixes_constant_is_the_full_set(self):
        assert DISPATCH_MIXES == ("balanced", "ull-heavy", "accel")
