"""Warm-pool keep-alive study."""

import pytest

from repro.experiments.pool_study import run_pool_study
from repro.faas.keepalive import FixedKeepAlive
from repro.sim.units import seconds


@pytest.fixture(scope="module")
def study():
    return run_pool_study(seed=0)


class TestHitRates:
    def test_all_policies_ran_same_trace(self, study):
        triggers = {study.outcome(n).triggers for n in study.policy_names()}
        assert len(triggers) == 1

    def test_longer_fixed_window_higher_hit_rate(self, study):
        assert (
            study.outcome("fixed-120s").hit_rate
            >= study.outcome("fixed-30s").hit_rate
            >= study.outcome("fixed-5s").hit_rate
        )

    def test_hits_plus_colds_equals_triggers(self, study):
        for name in study.policy_names():
            outcome = study.outcome(name)
            assert outcome.warm_hits + outcome.cold_starts == outcome.triggers

    def test_histogram_beats_shortest_fixed(self, study):
        assert (
            study.outcome("histogram").hit_rate
            > study.outcome("fixed-5s").hit_rate
        )

    def test_shorter_window_more_evictions(self, study):
        assert (
            study.outcome("fixed-5s").evictions
            >= study.outcome("fixed-120s").evictions
        )

    def test_mean_init_tracks_cold_starts(self, study):
        """More cold starts -> higher mean initialization."""
        by_colds = sorted(
            (study.outcome(n) for n in study.policy_names()),
            key=lambda o: o.cold_starts,
        )
        inits = [o.mean_init_us for o in by_colds]
        assert inits == sorted(inits)

    def test_best_hit_rate_helper(self, study):
        best = study.best_hit_rate()
        assert study.outcome(best).hit_rate == max(
            study.outcome(n).hit_rate for n in study.policy_names()
        )


class TestCustomPolicies:
    def test_custom_policy_set(self):
        result = run_pool_study(
            policies={"only": FixedKeepAlive(seconds(60))},
            functions=3,
            duration_s=30.0,
            seed=1,
        )
        assert result.policy_names() == ["only"]
        outcome = result.outcome("only")
        assert outcome.triggers > 0
        assert 0.0 <= outcome.hit_rate <= 1.0
