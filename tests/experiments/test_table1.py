"""T1/F1: the Table 1 grid reproduces the paper's anchors."""

import pytest

from repro.experiments.table1 import TABLE1_SCENARIOS, run_table1
from repro.faas.invocation import StartType

REPS = 3  # enough for band checks; benches run the full 10


@pytest.fixture(scope="module")
def table1():
    return run_table1(repetitions=REPS, seed=0)


class TestStructure:
    def test_all_cells_present(self, table1):
        assert len(table1.cells) == 9  # 3 categories x 3 scenarios

    def test_categories(self, table1):
        assert table1.categories() == ["array-filter", "firewall", "nat"]


class TestInitializationAnchors:
    def test_cold_is_1_5s(self, table1):
        for category in table1.categories():
            cell = table1.cell(category, StartType.COLD)
            assert cell.mean_init_us == pytest.approx(1.5e6, rel=0.05)

    def test_restore_is_1300us(self, table1):
        for category in table1.categories():
            cell = table1.cell(category, StartType.RESTORE)
            assert cell.mean_init_us == pytest.approx(1300, rel=0.05)

    def test_warm_is_1_1us(self, table1):
        for category in table1.categories():
            cell = table1.cell(category, StartType.WARM)
            assert cell.mean_init_us == pytest.approx(1.1, rel=0.1)


class TestExecutionAnchors:
    def test_category_means(self, table1):
        expected = {"firewall": 17.0, "nat": 1.5, "array-filter": 0.7}
        for category, target in expected.items():
            cell = table1.cell(category, StartType.WARM)
            assert cell.mean_exec_us == pytest.approx(target, rel=0.25)


class TestInitPercentages:
    def test_cold_above_99_99(self, table1):
        for category in table1.categories():
            assert table1.cell(category, StartType.COLD).mean_init_pct > 99.9

    def test_restore_in_paper_band(self, table1):
        for category in table1.categories():
            pct = table1.cell(category, StartType.RESTORE).mean_init_pct
            assert 98.0 < pct < 100.0

    def test_warm_band_per_category(self, table1):
        """Paper: 6.07 % / 42.3 % / 61.1 % for categories 1/2/3."""
        bands = {
            "firewall": (4.0, 9.0),
            "nat": (35.0, 50.0),
            "array-filter": (55.0, 68.0),
        }
        for category, (low, high) in bands.items():
            pct = table1.cell(category, StartType.WARM).mean_init_pct
            assert low <= pct <= high, f"{category}: {pct}"

    def test_warm_percentage_grows_as_exec_shrinks(self, table1):
        """Figure 1's key visual: the shorter the workload, the larger
        the init share."""
        fw = table1.cell("firewall", StartType.WARM).mean_init_pct
        nat = table1.cell("nat", StartType.WARM).mean_init_pct
        arr = table1.cell("array-filter", StartType.WARM).mean_init_pct
        assert fw < nat < arr


class TestFigure1Series:
    def test_series_cover_all_scenarios(self, table1):
        series = table1.figure1_series()
        assert set(series) == set(TABLE1_SCENARIOS)
        for values in series.values():
            assert len(values) == 3

    def test_percentages_bounded(self, table1):
        for values in table1.figure1_series().values():
            assert all(0.0 <= v <= 100.0 for v in values)
