"""Experiment registry: spec shape, protocol surface, CLI contract.

Every experiment the CLI exposes is a registered :class:`ExperimentSpec`
whose ``run()`` yields an :class:`ExperimentResult` supporting the
``rows()`` / ``summary()`` / ``to_json()`` protocol.  The cheap specs
are smoke-run end to end; the rest are checked structurally so the
suite stays fast.
"""

import json

import pytest

from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentSpec,
    all_specs,
    experiment_ids,
    get,
)

EXPECTED_IDS = {
    "table1",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "overhead",
    "colocation",
    "chaos",
    "cluster_recovery",
    "cluster_sharded",
    "cluster_study",
    "dispatch_zoo",
    "pool_study",
    "prewarm_frontier",
    "slo",
    "transport_sensitivity",
    "ablations",
}

#: Cheap enough to execute in the tier-1 suite (fast mode).
SMOKE_IDS = ("table1", "figure2", "overhead", "transport_sensitivity")


class TestRegistryShape:
    def test_all_expected_experiments_registered(self):
        assert set(experiment_ids()) == EXPECTED_IDS

    def test_specs_are_well_formed(self):
        for spec in all_specs():
            assert isinstance(spec, ExperimentSpec)
            assert spec.id and spec.id == spec.id.strip()
            assert spec.title
            assert spec.fast_estimate_s > 0
            assert callable(spec.runner)
            assert callable(spec.renderer)
            assert callable(spec.rows_fn)

    def test_get_unknown_id_raises_keyerror(self):
        with pytest.raises(KeyError):
            get("no-such-experiment")

    def test_ids_are_sorted_and_stable(self):
        assert list(experiment_ids()) == sorted(experiment_ids())
        assert [spec.id for spec in all_specs()] == list(experiment_ids())


class TestExperimentConfig:
    def test_fast_mode_shrinks_workload(self):
        fast = ExperimentConfig(fast=True)
        full = ExperimentConfig(fast=False)
        assert fast.repetitions < full.repetitions
        assert len(fast.vcpu_sweep) < len(full.vcpu_sweep)
        assert set(fast.vcpu_sweep) <= set(full.vcpu_sweep)

    def test_defaults(self):
        config = ExperimentConfig()
        assert config.fast is True
        assert config.seed == 0
        assert config.platform == "firecracker"


class TestResultProtocol:
    @pytest.fixture(scope="class")
    def results(self):
        config = ExperimentConfig(fast=True, seed=0)
        return {spec_id: get(spec_id).run(config) for spec_id in SMOKE_IDS}

    def test_run_returns_experiment_result(self, results):
        for result in results.values():
            assert isinstance(result, ExperimentResult)
            assert result.raw is not None

    def test_rows_are_flat_json_scalars(self, results):
        for spec_id, result in results.items():
            rows = result.rows()
            assert rows, spec_id
            for row in rows:
                assert isinstance(row, dict)
                for key, value in row.items():
                    assert isinstance(key, str)
                    assert value is None or isinstance(
                        value, (str, int, float, bool)
                    ), f"{spec_id}: {key}={value!r}"

    def test_summary_is_rendered_text(self, results):
        for spec_id, result in results.items():
            summary = result.summary()
            assert isinstance(summary, str) and summary.strip(), spec_id

    def test_to_json_round_trips(self, results):
        for spec_id, result in results.items():
            payload = json.loads(result.to_json())
            assert payload["experiment"] == spec_id
            assert payload["title"] == get(spec_id).title
            assert payload["rows"] == result.rows()

    def test_same_seed_same_rows(self):
        config = ExperimentConfig(fast=True, seed=42)
        first = get("table1").run(config).rows()
        second = get("table1").run(config).rows()
        assert first == second


class TestCliContract:
    def test_cli_experiments_table_mirrors_registry(self):
        from repro.cli import EXPERIMENTS

        assert set(EXPERIMENTS) == EXPECTED_IDS
        for spec in all_specs():
            assert EXPERIMENTS[spec.id] == spec.title
