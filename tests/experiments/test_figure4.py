"""F4: HORSE vs cold/restore/warm init percentages (§5.3)."""

import pytest

from repro.experiments.figure4 import FIGURE4_SCENARIOS, run_figure4
from repro.faas.invocation import StartType


@pytest.fixture(scope="module")
def figure4():
    return run_figure4(repetitions=3, seed=0)


class TestStructure:
    def test_four_scenarios_by_three_categories(self, figure4):
        series = figure4.series()
        assert set(series) == set(FIGURE4_SCENARIOS)
        for values in series.values():
            assert len(values) == 3


class TestHorseWins:
    def test_horse_lowest_init_share_everywhere(self, figure4):
        for category in figure4.categories():
            horse = figure4.init_pct(category, StartType.HORSE)
            for scenario in (StartType.COLD, StartType.RESTORE, StartType.WARM):
                assert horse < figure4.init_pct(category, scenario)

    def test_horse_init_share_in_paper_band(self, figure4):
        """Paper: between 0.77 % and 17.64 %."""
        low, high = figure4.horse_init_pct_range()
        assert 0.5 <= low <= 1.2
        assert 10.0 <= high <= 20.0

    def test_advantage_vs_warm_about_8x(self, figure4):
        """Paper: up to 8.95x."""
        assert 5.0 <= figure4.horse_advantage(StartType.WARM) <= 11.0

    def test_advantage_vs_cold_about_140x(self, figure4):
        """Paper: up to 142.84x."""
        assert 100.0 <= figure4.horse_advantage(StartType.COLD) <= 160.0

    def test_advantage_vs_restore_about_140x(self, figure4):
        """Paper: up to 142.7x."""
        assert 100.0 <= figure4.horse_advantage(StartType.RESTORE) <= 160.0

    def test_cold_advantage_exceeds_warm_advantage(self, figure4):
        assert figure4.horse_advantage(StartType.COLD) > figure4.horse_advantage(
            StartType.WARM
        )
