"""ASCII chart rendering."""

import pytest

from repro.analysis.ascii_chart import bar, bar_chart, sparkline


class TestBar:
    def test_full_bar(self):
        assert bar(100, 100, width=10) == "#" * 10

    def test_empty_bar(self):
        assert bar(0, 100, width=10) == "." * 10

    def test_half_bar(self):
        assert bar(50, 100, width=10) == "#" * 5 + "." * 5

    def test_clamps_over_maximum(self):
        assert bar(500, 100, width=4) == "####"

    def test_clamps_negative(self):
        assert bar(-5, 100, width=4) == "...."

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            bar(1, 0)
        with pytest.raises(ValueError):
            bar(1, 10, width=0)


class TestBarChart:
    def test_renders_all_series_and_categories(self):
        text = bar_chart(
            {"warm": [6.0, 61.0], "horse": [0.8, 16.0]},
            categories=["cat1", "cat3"],
        )
        assert "warm:" in text and "horse:" in text
        assert text.count("cat1") == 2
        assert "61.00%" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"s": [1.0]}, categories=["a", "b"])

    def test_custom_unit(self):
        text = bar_chart({"s": [5.0]}, categories=["a"], maximum=10, unit="ms")
        assert "5.00ms" in text


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert list(line) == sorted(line)

    def test_flat_series(self):
        assert sparkline([7, 7, 7]) == "▁▁▁"

    def test_extremes_use_extreme_blocks(self):
        line = sparkline([0, 100])
        assert line[0] == "▁" and line[-1] == "█"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])
