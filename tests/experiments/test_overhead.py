"""OV: the §5.2 overhead study stays inside the paper's bounds."""

import pytest

from repro.experiments.overhead import run_overhead


@pytest.fixture(scope="module")
def overhead():
    return run_overhead(vcpu_counts=(1, 36), seed=0)


class TestMemory:
    def test_memory_delta_at_36_vcpus_near_528kb(self, overhead):
        assert overhead.memory_delta_bytes(36) == pytest.approx(528_000, rel=0.05)

    def test_memory_delta_grows_with_vcpus(self, overhead):
        assert overhead.memory_delta_bytes(36) > overhead.memory_delta_bytes(1)

    def test_vanilla_has_no_extra_memory(self, overhead):
        assert overhead.run("vanilla", 36).extra_memory_bytes == 0

    def test_memory_overhead_below_1_percent(self, overhead):
        """Headline claim: overhead in CPU and memory is < 1 %."""
        assert overhead.run("horse", 36).memory_overhead_pct < 1.0

    def test_running_memory_is_5gb(self, overhead):
        """Paper: running sandboxes use ~5 GB."""
        assert overhead.run("horse", 36).running_memory_bytes == pytest.approx(
            5 * 1024**3, rel=0.05
        )


class TestCpu:
    def test_pause_delta_below_paper_bound(self, overhead):
        """Paper: pause-phase CPU increase <= 0.3 %."""
        for vcpus in overhead.vcpu_counts():
            assert overhead.pause_cpu_delta_pct(vcpus) <= 0.3

    def test_resume_delta_below_paper_bound(self, overhead):
        """Paper: resume-phase CPU increase <= 2.7 %."""
        for vcpus in overhead.vcpu_counts():
            assert overhead.resume_cpu_delta_pct(vcpus) <= 2.7

    def test_pause_delta_nonnegative_at_36(self, overhead):
        """HORSE does extra pause-time work (precompute), so the delta
        is a (tiny) cost, not a saving, at high vCPU counts."""
        assert overhead.pause_cpu_delta_pct(36) >= 0.0

    def test_workload_work_scales_with_vcpus(self, overhead):
        small = overhead.run("horse", 1).usage.workload_work_ns
        large = overhead.run("horse", 36).usage.workload_work_ns
        assert large > small


class TestRunBookkeeping:
    def test_samples_collected_every_500ms(self, overhead):
        run = overhead.run("horse", 1)
        assert run.samples > 10  # ~8 s horizon at 500 ms

    def test_modes_and_sweep_present(self, overhead):
        assert overhead.vcpu_counts() == [1, 36]
        assert overhead.run("vanilla", 1).mode == "vanilla"

    def test_unknown_mode_rejected(self):
        from repro.experiments.overhead import _run_one

        with pytest.raises(ValueError):
            _run_one("kvm", 1, 0)
