"""Xen-side experiments: the paper ran both platforms and reports
"similar observations"; these runs check that claim holds here too."""

import pytest

from repro.experiments.figure2 import run_figure2
from repro.experiments.overhead import run_overhead
from repro.experiments.slo import run_slo
from repro.experiments.table1 import run_table1
from repro.faas.invocation import StartType


class TestXenTable1:
    @pytest.fixture(scope="class")
    def xen_table1(self):
        return run_table1(repetitions=2, platform="xen")

    def test_warm_start_slightly_slower_than_firecracker(self, xen_table1):
        fc = run_table1(repetitions=2, platform="firecracker")
        assert (
            xen_table1.cell("firewall", StartType.WARM).mean_init_us
            > fc.cell("firewall", StartType.WARM).mean_init_us
        )

    def test_same_ordering_of_scenarios(self, xen_table1):
        for category in xen_table1.categories():
            cold = xen_table1.cell(category, StartType.COLD).mean_init_us
            restore = xen_table1.cell(category, StartType.RESTORE).mean_init_us
            warm = xen_table1.cell(category, StartType.WARM).mean_init_us
            assert cold > restore > warm

    def test_warm_init_share_band_similar(self, xen_table1):
        """'Similar observations': the warm shares stay in the same
        bands the paper reports for Firecracker."""
        assert 4.0 <= xen_table1.cell("firewall", StartType.WARM).mean_init_pct <= 10.0
        assert 55.0 <= xen_table1.cell(
            "array-filter", StartType.WARM
        ).mean_init_pct <= 70.0


class TestXenFigure2:
    def test_hot_steps_dominate_on_xen_too(self):
        result = run_figure2(vcpu_counts=(1, 36), repetitions=2, platform="xen")
        for point in result.points:
            assert point.hot_share >= 0.86
        assert result.points[-1].hot_share > result.points[0].hot_share


class TestXenOverheadAndSlo:
    def test_overhead_bounds_hold_on_xen(self):
        result = run_overhead(vcpu_counts=(36,), seed=0, platform="xen")
        assert result.memory_delta_bytes(36) == pytest.approx(528_600, rel=0.05)
        assert result.pause_cpu_delta_pct(36) <= 0.3
        assert result.resume_cpu_delta_pct(36) <= 2.7

    def test_horse_attainment_on_xen(self):
        result = run_slo(
            invocations=20,
            platform="xen",
            scenarios=(StartType.WARM, StartType.HORSE),
        )
        for category in result.categories():
            assert result.attainment(category, StartType.HORSE) >= result.attainment(
                category, StartType.WARM
            )
