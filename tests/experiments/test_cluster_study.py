"""Cluster placement study."""

import pytest

from repro.experiments.cluster_study import run_cluster_study


@pytest.fixture(scope="module")
def study():
    return run_cluster_study(seed=0, duration_s=40.0)


class TestPlacementTradeoffs:
    def test_same_trace_all_policies(self, study):
        counts = {study.outcome(p).triggers for p in study.policies()}
        assert len(counts) == 1

    def test_warm_affinity_fewest_cold_fallbacks(self, study):
        affinity = study.outcome("warm-affinity").cold_fallbacks
        assert affinity <= study.outcome("round-robin").cold_fallbacks
        assert affinity <= study.outcome("least-loaded").cold_fallbacks

    def test_round_robin_best_balance(self, study):
        rr = study.outcome("round-robin").balance_cv
        assert rr <= study.outcome("warm-affinity").balance_cv
        assert rr <= study.outcome("least-loaded").balance_cv
        assert rr < 0.1

    def test_warm_affinity_lowest_mean_init(self, study):
        affinity = study.outcome("warm-affinity").mean_init_us
        assert affinity <= study.outcome("round-robin").mean_init_us

    def test_cold_rates_are_small(self, study):
        """Pools are provisioned; fallbacks should be the exception."""
        for policy in study.policies():
            assert study.outcome(policy).cold_rate < 0.15

    def test_hosts_recorded(self, study):
        assert study.hosts == 4
