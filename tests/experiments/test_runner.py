"""Shared experiment machinery."""

import pytest

from repro.experiments.runner import (
    RepeatedMeasurement,
    SweepSeries,
    fresh_platform,
    max_relative_ci,
    paused_sandbox,
    repeat,
)
from repro.hypervisor.sandbox import SandboxState


class TestRepeat:
    def test_runs_requested_repetitions(self):
        result = repeat(lambda rngs, i: float(i), repetitions=5)
        assert result.values == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert result.mean == 2.0

    def test_rngs_forked_per_repetition(self):
        draws = []
        repeat(lambda rngs, i: draws.append(rngs.stream("x").random()) or 0.0,
               repetitions=3)
        assert len(set(draws)) == 3

    def test_deterministic_across_calls(self):
        def measure(rngs, _):
            return rngs.stream("x").random()

        a = repeat(measure, repetitions=4, seed=9).values
        b = repeat(measure, repetitions=4, seed=9).values
        assert a == b

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            repeat(lambda rngs, i: 0.0, repetitions=0)


class TestRepeatedMeasurement:
    def test_mean_and_ci(self):
        m = RepeatedMeasurement("x")
        for v in (1.0, 2.0, 3.0):
            m.add(v)
        assert m.mean == 2.0
        assert m.ci95.n == 3

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            _ = RepeatedMeasurement("x").mean

    def test_max_relative_ci(self):
        tight = RepeatedMeasurement("t")
        for v in (10.0, 10.0, 10.0):
            tight.add(v)
        loose = RepeatedMeasurement("l")
        for v in (1.0, 100.0):
            loose.add(v)
        assert max_relative_ci([tight, loose]) > 0.5

    def test_paper_ci_quality_on_resume_measurements(self):
        """The paper claims 10 reps give <= 3 % CIs; our deterministic
        cost model trivially satisfies it — guard it stays that way."""
        def measure(rngs, _):
            virt = fresh_platform()
            sandbox = paused_sandbox(virt, vcpus=4)
            return float(virt.vanilla.resume(sandbox, 0).total_ns)

        result = repeat(measure, repetitions=10)
        assert result.ci95.relative_half_width <= 0.03


class TestFixtures:
    def test_fresh_platform_independent(self):
        a = fresh_platform()
        b = fresh_platform()
        assert a.host is not b.host

    def test_paused_sandbox_state(self):
        virt = fresh_platform()
        sandbox = paused_sandbox(virt, vcpus=3)
        assert sandbox.state is SandboxState.PAUSED
        assert sandbox.vcpu_count == 3


class TestSweepSeries:
    def test_rows_sorted_by_parameter(self):
        series = SweepSeries(name="s", parameter="vcpus")
        for value in (36, 1, 8):
            m = RepeatedMeasurement(str(value))
            m.add(float(value))
            series.add_point(value, m)
        assert series.parameters() == [1, 8, 36]
        assert series.means() == [1.0, 8.0, 36.0]
        assert series.as_rows()[0] == (1, 1.0, 0.0)
