"""Dispatcher-driven interference ablation."""

import pytest

from repro.experiments.ablations_dispatch import run_dispatch_interference


@pytest.fixture(scope="module")
def result():
    return run_dispatch_interference(seed=0)


class TestMechanisticInterference:
    def test_strikes_landed(self, result):
        # Strikes fire every 2nd resume over 4 s; jobs run 2 s, so the
        # strikes in the first half land on busy cores and count.
        attempted = result.resumes // 2
        assert 0 < result.preemptions <= attempted

    def test_delay_is_thread_plus_two_switches(self, result):
        """Direct preemption cost: merge-thread occupancy (~40 ns) plus
        two context switches (2 x 1.5 us)."""
        assert result.delay_per_preemption_us == pytest.approx(3.04, abs=0.1)

    def test_mean_barely_moves(self, result):
        """Tail-only signature (the §5.4 claim, mechanistically)."""
        assert abs(result.mean_delta_us) < 2.0

    def test_p99_shows_the_preemptions(self, result):
        assert result.p99_delta_us > result.mean_delta_us
        assert result.p99_delta_us >= result.delay_per_preemption_us

    def test_baseline_deterministic(self):
        a = run_dispatch_interference(seed=1)
        b = run_dispatch_interference(seed=1)
        assert a.p99_completion_ms == b.p99_completion_ms

    def test_no_interference_without_strikes(self):
        result = run_dispatch_interference(
            jobs=10, job_ms=500, resumes=4, spill_every=1_000_000, seed=2
        )
        assert result.preemptions == 0
        assert result.mean_delta_us == pytest.approx(0.0, abs=0.01)
