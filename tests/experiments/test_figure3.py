"""F3: the four-setup resume comparison reproduces §5.1."""

import pytest

from repro.experiments.figure3 import SETUPS, run_figure3


@pytest.fixture(scope="module")
def figure3():
    return run_figure3(vcpu_counts=(1, 8, 36), repetitions=3)


class TestSetups:
    def test_all_four_setups_present(self, figure3):
        assert set(figure3.series) == set(SETUPS) == {"vanil", "ppsm", "coal", "horse"}

    def test_vcpu_counts(self, figure3):
        assert figure3.vcpu_counts() == [1, 8, 36]


class TestImprovementBands:
    def test_coal_band_16_to_20_percent(self, figure3):
        """Paper: coalescing improves the resume by 16 % to 20 %."""
        for vcpus in figure3.vcpu_counts():
            improvement = figure3.improvement("coal", vcpus)
            assert 0.14 <= improvement <= 0.23, f"{vcpus}: {improvement}"

    def test_ppsm_band_55_to_69_percent(self, figure3):
        """Paper: P2SM improves the resume by 55 % to 69 %."""
        for vcpus in figure3.vcpu_counts():
            improvement = figure3.improvement("ppsm", vcpus)
            assert 0.55 <= improvement <= 0.69, f"{vcpus}: {improvement}"

    def test_horse_beats_both_mechanisms_alone(self, figure3):
        for vcpus in figure3.vcpu_counts():
            horse = figure3.mean_ns("horse", vcpus)
            assert horse < figure3.mean_ns("ppsm", vcpus)
            assert horse < figure3.mean_ns("coal", vcpus)

    def test_horse_speedup_at_least_7x(self, figure3):
        """Paper: up to 7.16x (ours exceeds it at high vCPU counts —
        see EXPERIMENTS.md on the paper's inconsistent anchors)."""
        speedups = [figure3.speedup("horse", v) for v in figure3.vcpu_counts()]
        assert max(speedups) >= 7.16


class TestHorseFlatness:
    def test_horse_constant_in_vcpus(self, figure3):
        assert figure3.horse_flatness() == pytest.approx(1.0, abs=0.02)

    def test_horse_around_150ns(self, figure3):
        for vcpus in figure3.vcpu_counts():
            assert 100 <= figure3.mean_ns("horse", vcpus) <= 200

    def test_vanil_grows_with_vcpus(self, figure3):
        values = [figure3.mean_ns("vanil", v) for v in figure3.vcpu_counts()]
        assert values == sorted(values)
        assert values[-1] > values[0]
