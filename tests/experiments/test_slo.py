"""SLO-attainment experiment."""

import pytest

from repro.experiments.slo import DEFAULT_BUDGETS_NS, SLO_SCENARIOS, run_slo
from repro.faas.invocation import StartType
from repro.sim.units import microseconds


@pytest.fixture(scope="module")
def slo():
    return run_slo(invocations=40, seed=0)


class TestAttainment:
    def test_cold_and_restore_attain_nothing(self, slo):
        """A 1.5 s or 1300 us init blows any uLL budget."""
        for category in slo.categories():
            assert slo.attainment(category, StartType.COLD) == 0.0
            assert slo.attainment(category, StartType.RESTORE) == 0.0

    def test_horse_attains_essentially_everything(self, slo):
        # the firewall envelope clips at exactly its budget, so a draw
        # at the clip plus 132 ns of init can land marginally over
        for category in slo.categories():
            assert slo.attainment(category, StartType.HORSE) >= 0.95

    def test_horse_never_below_warm(self, slo):
        for category in slo.categories():
            assert slo.attainment(category, StartType.HORSE) >= slo.attainment(
                category, StartType.WARM
            )

    def test_warm_loses_some_firewall_budget(self, slo):
        """Firewall runs ~17-20 us against a 20 us budget: the ~1.1 us
        vanilla resume pushes a visible fraction over the line."""
        warm = slo.attainment("firewall", StartType.WARM)
        assert 0.5 <= warm < 1.0

    def test_grid_complete(self, slo):
        assert len(slo.cells) == len(slo.categories()) * len(SLO_SCENARIOS)
        assert slo.invocations_per_cell == 40


class TestConfiguration:
    def test_budgets_cover_all_categories(self):
        assert set(DEFAULT_BUDGETS_NS) == {"firewall", "nat", "array-filter"}

    def test_zero_invocations_rejected(self):
        with pytest.raises(ValueError):
            run_slo(invocations=0)

    def test_missing_budget_rejected(self):
        from repro.workloads import MlInferenceWorkload

        with pytest.raises(KeyError):
            run_slo(invocations=1, workloads=[MlInferenceWorkload()])

    def test_custom_budget_changes_outcome(self):
        # An absurdly tight budget fails even HORSE.
        result = run_slo(
            invocations=10,
            budgets_ns={"firewall": 100, "nat": 100, "array-filter": 100},
            scenarios=(StartType.HORSE,),
        )
        for category in result.categories():
            assert result.attainment(category, StartType.HORSE) == 0.0
