"""The claim-validation gate: every paper claim must stay in band."""

import pytest

from repro.analysis.validation import (
    ClaimCheck,
    failed_checks,
    summarize,
    validate_all,
)


@pytest.fixture(scope="module")
def checks():
    return validate_all(fast=True, seed=0)


class TestValidation:
    def test_no_hard_failures(self, checks):
        """The regression gate for the whole reproduction."""
        failures = failed_checks(checks)
        assert not failures, "\n".join(str(c) for c in failures)

    def test_covers_every_artifact(self, checks):
        prefixes = {check.claim_id.split("-")[0] for check in checks}
        assert {"T1", "F2", "F3", "OV", "F4", "CO"} <= prefixes

    def test_at_least_twenty_claims(self, checks):
        assert len(checks) >= 20

    def test_summary_mentions_counts(self, checks):
        text = summarize(checks)
        assert "claims in band" in text
        for check in checks[:3]:
            assert check.claim_id in text

    def test_claimcheck_status_logic(self):
        passing = ClaimCheck("x", "d", "p", measured=5.0, band=(4.0, 6.0))
        assert passing.passed and "PASS" in str(passing)
        failing = ClaimCheck("x", "d", "p", measured=9.0, band=(4.0, 6.0))
        assert not failing.passed and "FAIL" in str(failing)
        deviation = ClaimCheck(
            "x", "d", "p", measured=9.0, band=(4.0, 6.0), known_deviation=True
        )
        assert "DEVIATION" in str(deviation)
        assert failed_checks([passing, failing, deviation]) == [failing]
