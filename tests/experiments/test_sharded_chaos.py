"""Sharded chaos study: cells, aggregation, rendering, CLI plumbing.

The shard-*invariance* contract itself is pinned in
``tests/sim/test_shard_invariance.py``; this file covers the study's
own semantics — the front-end arrival plan, cell purity, the
mode-level aggregation, the merged trace artifact, and the CLI flags.
"""

import json

import pytest

from repro.experiments.sharded_chaos import (
    CellOutcome,
    ShardedChaosConfig,
    _aggregate_mode,
    cell_seed,
    run_cell,
    run_sharded_chaos,
    render_sharded_chaos,
    trace_jsonl,
    write_trace_jsonl,
)
from repro.faas.frontend import DISPATCH_LATENCY_NS, plan_arrivals


FAST = ShardedChaosConfig(groups=3, hosts=2, requests=60, drain_s=10.0, seed=5)


class TestFrontend:
    def test_plan_covers_every_request_exactly_once(self):
        plan = plan_arrivals(
            requests=200, groups=5, mean_interarrival_ms=5.0,
            ull_fraction=0.5, seed=3,
        )
        assert set(plan) == set(range(5))
        indices = sorted(a.index for group in plan.values() for a in group)
        assert indices == list(range(200))

    def test_deliveries_are_submit_plus_dispatch_hop_and_ascending(self):
        plan = plan_arrivals(
            requests=100, groups=4, mean_interarrival_ms=2.0,
            ull_fraction=0.3, seed=9,
        )
        for arrivals in plan.values():
            for arrival in arrivals:
                assert arrival.deliver_ns == arrival.submit_ns + DISPATCH_LATENCY_NS
                assert arrival.function in ("firewall", "background")
                assert arrival.priority == (1 if arrival.function == "firewall" else 0)
            deliver = [a.deliver_ns for a in arrivals]
            assert deliver == sorted(deliver)

    def test_plan_is_pure_in_seed(self):
        kwargs = dict(
            requests=50, groups=3, mean_interarrival_ms=5.0,
            ull_fraction=0.5, seed=12,
        )
        assert plan_arrivals(**kwargs) == plan_arrivals(**kwargs)
        different = plan_arrivals(**{**kwargs, "seed": 13})
        assert different != plan_arrivals(**kwargs)

    def test_arrival_times_do_not_depend_on_group_count(self):
        """Routing draws come from their own stream: the same seed
        offers the same load however many cells it is split over."""
        one = plan_arrivals(
            requests=80, groups=1, mean_interarrival_ms=5.0,
            ull_fraction=0.5, seed=4,
        )
        eight = plan_arrivals(
            requests=80, groups=8, mean_interarrival_ms=5.0,
            ull_fraction=0.5, seed=4,
        )
        flat = sorted(
            (a.index, a.submit_ns, a.function)
            for group in eight.values()
            for a in group
        )
        assert flat == [(a.index, a.submit_ns, a.function) for a in one[0]]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="requests"):
            plan_arrivals(0, 1, 5.0, 0.5, 0)
        with pytest.raises(ValueError, match="groups"):
            plan_arrivals(1, 0, 5.0, 0.5, 0)


class TestCells:
    def test_cell_seed_is_pure_and_group_distinct(self):
        assert cell_seed(7, 0) == cell_seed(7, 0)
        assert cell_seed(7, 0) != cell_seed(7, 1)
        assert cell_seed(7, 0) != cell_seed(8, 0)

    def test_run_cell_is_reproducible(self):
        plan = plan_arrivals(
            requests=FAST.requests, groups=FAST.groups,
            mean_interarrival_ms=FAST.mean_interarrival_ms,
            ull_fraction=FAST.ull_fraction, seed=FAST.seed,
        )
        first = run_cell("breaker", FAST, 1, plan[1])
        second = run_cell("breaker", FAST, 1, plan[1])
        assert first == second

    def test_cell_records_are_sorted_and_tagged(self):
        plan = plan_arrivals(
            requests=FAST.requests, groups=FAST.groups,
            mean_interarrival_ms=FAST.mean_interarrival_ms,
            ull_fraction=FAST.ull_fraction, seed=FAST.seed,
        )
        cell = run_cell("breaker", FAST, 2, plan[2])
        assert cell.submitted == len(plan[2])
        times = [record["t"] for record in cell.records]
        assert times == sorted(times)
        assert all(record["shard"] == 2 for record in cell.records)
        assert all(record["mode"] == "breaker" for record in cell.records)
        kinds = {record["kind"] for record in cell.records}
        assert kinds <= {"crash", "recover", "request"}
        assert sum(1 for r in cell.records if r["kind"] == "request") == len(
            plan[2]
        )


class TestAggregation:
    def test_counters_sum_and_percentiles_pool(self):
        cells = [
            CellOutcome(
                mode="breaker", group=0, submitted=3, completed=2,
                latencies_us=[1.0, 100.0], ull_latencies_us=[1.0],
                degradations={"steer": 1}, fired={"node_crash": 2},
                crashes=2, recoveries=1,
            ),
            CellOutcome(
                mode="breaker", group=1, submitted=2, completed=2,
                latencies_us=[2.0, 3.0], ull_latencies_us=[2.0],
                degradations={"steer": 2, "shed": 1}, fired={"node_crash": 1},
                crashes=1, recoveries=1,
            ),
        ]
        outcome = _aggregate_mode("breaker", cells)
        assert outcome.submitted == 5
        assert outcome.completed == 4
        assert outcome.crashes == 3
        assert outcome.recoveries == 2
        assert outcome.degradations == {"shed": 1, "steer": 3}
        assert outcome.fired == {"node_crash": 3}
        # Pooled percentiles, not an average of per-cell percentiles:
        # the pooled p50 of [1, 2, 3, 100] sits in [2, 3].
        assert 2.0 <= outcome.p50_us <= 3.0

    def test_violations_concatenate_with_group_prefix(self):
        cells = [
            CellOutcome(mode="vanilla", group=0, violations=["g0: lost"]),
            CellOutcome(mode="vanilla", group=1, violations=[]),
        ]
        outcome = _aggregate_mode("vanilla", cells)
        assert outcome.violations == ["g0: lost"]
        assert not outcome.ok


class TestRunAndRender:
    def test_run_is_sound_and_accounts_every_request(self):
        result = run_sharded_chaos(FAST, shards=1)
        assert result.ok
        for outcome in result.outcomes.values():
            assert outcome.submitted == FAST.requests
        assert result.events_executed > 0
        assert result.windows >= len(result.cells)

    def test_two_inprocess_runs_are_byte_identical(self):
        first = run_sharded_chaos(FAST, shards=1)
        second = run_sharded_chaos(FAST, shards=1)
        assert render_sharded_chaos(first) == render_sharded_chaos(second)
        assert trace_jsonl(first) == trace_jsonl(second)

    def test_render_never_mentions_the_worker_count(self):
        """The rendered output is part of the byte-identity contract:
        it may only contain model parameters and simulated results."""
        rendered = render_sharded_chaos(run_sharded_chaos(FAST, shards=1))
        assert "shards=" not in rendered
        assert "worker" not in rendered
        assert f"groups={FAST.groups}" in rendered
        assert f"lookahead_ns={DISPATCH_LATENCY_NS}" in rendered

    def test_trace_jsonl_is_canonical_and_mode_major(self, tmp_path):
        result = run_sharded_chaos(FAST, shards=1)
        text = trace_jsonl(result)
        lines = text.splitlines()
        assert len(lines) == len(result.records)
        parsed = [json.loads(line) for line in lines]
        assert parsed == result.records
        for line, record in zip(lines, parsed):
            assert line == json.dumps(
                record, sort_keys=True, separators=(",", ":")
            )
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(result, str(path))
        assert path.read_text() == text

    def test_merged_records_ascend_within_each_mode(self):
        result = run_sharded_chaos(FAST, shards=1)
        by_mode = {}
        for record in result.records:
            by_mode.setdefault(record["mode"], []).append(record)
        for records in by_mode.values():
            keyed = [(record["t"], record["shard"]) for record in records]
            assert keyed == sorted(keyed)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="groups"):
            ShardedChaosConfig(groups=0)
        with pytest.raises(ValueError, match="hosts"):
            ShardedChaosConfig(hosts=1)
        with pytest.raises(ValueError, match="shards"):
            run_sharded_chaos(FAST, shards=0)


class TestCli:
    def test_chaos_shards_flag_and_trace_out(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "chaos", "cluster", "--shards", "2", "--groups", "3",
                "--hosts", "2", "--requests", "60", "--seed", "5",
                "--trace-out", str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos-sharded: groups=3" in out
        assert trace_path.exists()
        first_line = trace_path.read_text().splitlines()[0]
        record = json.loads(first_line)
        assert {"t", "shard", "mode", "kind"} <= set(record)

    def test_trace_out_without_shards_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["chaos", "cluster", "--trace-out", str(tmp_path / "t.jsonl")]
        )
        assert code == 2
        assert "--trace-out requires --shards" in capsys.readouterr().err

    def test_experiment_registry_exposes_cluster_sharded(self):
        from repro.experiments.registry import ExperimentConfig, get

        spec = get("cluster_sharded")
        result = spec.run(ExperimentConfig(fast=True, seed=2, shards=1))
        rows = result.rows()
        assert rows and all("mode" in row for row in rows)
        assert "chaos-sharded:" in result.summary()
