"""CO: the §5.4 colocation study reproduces the isolation claims."""

import pytest

from repro.experiments.colocation import run_colocation


@pytest.fixture(scope="module")
def colocation():
    return run_colocation(vcpu_counts=(1, 36), seed=0)


class TestIsolation:
    def test_mean_essentially_unchanged(self, colocation):
        """Paper: no difference between the mean latencies.  We allow a
        few us of drift on a ~1.8 s mean (< 0.001 %)."""
        for vcpus in colocation.vcpu_counts():
            delta = abs(colocation.mean_delta_us(vcpus))
            vanil_mean = colocation.run("vanilla", vcpus).summary().mean_us
            assert delta / vanil_mean < 1e-5

    def test_p95_essentially_unchanged(self, colocation):
        for vcpus in colocation.vcpu_counts():
            delta = abs(colocation.p95_delta_us(vcpus))
            vanil = colocation.run("vanilla", vcpus).summary().p95_us
            assert delta / vanil < 1e-5

    def test_no_preemptions_at_1_vcpu(self, colocation):
        assert colocation.run("horse", 1).preemption_hits == 0

    def test_p99_overhead_small_at_36_vcpus(self, colocation):
        """Paper: up to ~30 us (0.00107 %) at 36 vCPUs."""
        overhead_us = colocation.p99_overhead_us(36)
        assert 0.0 <= overhead_us <= 60.0
        assert colocation.p99_overhead_pct(36) <= 0.005

    def test_p99_overhead_zero_at_1_vcpu(self, colocation):
        assert colocation.p99_overhead_us(1) == pytest.approx(0.0, abs=1.0)


class TestExperimentShape:
    def test_same_arrivals_both_modes(self, colocation):
        for vcpus in colocation.vcpu_counts():
            assert (
                colocation.run("vanilla", vcpus).summary().invocations
                == colocation.run("horse", vcpus).summary().invocations
            )

    def test_thumbnails_run_longer_than_1s(self, colocation):
        """Paper §5.4 targets the > 1 s function class."""
        summary = colocation.run("vanilla", 1).summary()
        assert summary.mean_us > 1_000_000

    def test_reasonable_sample_size(self, colocation):
        assert colocation.run("vanilla", 1).summary().invocations >= 50

    def test_latencies_positive(self, colocation):
        run = colocation.run("horse", 36)
        assert all(lat > 0 for lat in run.latencies_us)
