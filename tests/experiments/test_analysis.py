"""Analysis renderers produce well-formed tables and series."""

import pytest

from repro.analysis.figures import (
    colocation_series,
    figure1_series,
    figure2_series,
    figure3_series,
    figure4_series,
    render_colocation,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
)
from repro.analysis.tables import render_table, render_table1
from repro.experiments.colocation import run_colocation
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module")
def table1():
    return run_table1(repetitions=2, seed=0)


@pytest.fixture(scope="module")
def figure2():
    return run_figure2(vcpu_counts=(1, 36), repetitions=2)


@pytest.fixture(scope="module")
def figure3():
    return run_figure3(vcpu_counts=(1, 36), repetitions=2)


@pytest.fixture(scope="module")
def figure4():
    return run_figure4(repetitions=2, seed=0)


class TestRenderTable:
    def test_header_and_rows(self):
        text = render_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])


class TestRenderers:
    def test_table1_contains_all_metrics(self, table1):
        text = render_table1(table1)
        assert "Initialization (us)" in text
        assert "Init. Per. (%)" in text
        assert "firewall/warm" in text

    def test_figure1(self, table1):
        text = render_figure1(table1)
        assert "cold" in text and "warm" in text
        series = figure1_series(table1)
        assert set(series) == {"cold", "restore", "warm"}

    def test_figure2(self, figure2):
        text = render_figure2(figure2)
        assert "4-sorted-merge" in text
        series = figure2_series(figure2)
        assert "steps4+5 share %" in series

    def test_figure3(self, figure3):
        text = render_figure3(figure3)
        for setup in ("vanil", "ppsm", "coal", "horse"):
            assert setup in text
        series = figure3_series(figure3)
        assert len(series["horse"]) == 2

    def test_figure4(self, figure4):
        text = render_figure4(figure4)
        assert "horse" in text
        series = figure4_series(figure4)
        assert set(series) == {"cold", "restore", "warm", "horse"}

    def test_colocation(self):
        result = run_colocation(vcpu_counts=(1,), seed=0)
        text = render_colocation(result)
        assert "p99" in text
        series = colocation_series(result)
        assert set(series) == {"vanilla", "horse"}
