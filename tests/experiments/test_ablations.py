"""Ablation drivers: sanity and directionality of each study."""

import pytest

from repro.experiments.ablations import (
    ablate_mechanism_split,
    ablate_platform,
    ablate_precompute_churn,
    ablate_ull_runqueue_count,
)
from repro.hypervisor.pause_resume import STEP_LOAD, STEP_MERGE


class TestUllRunqueueCount:
    @pytest.fixture(scope="class")
    def points(self):
        return ablate_ull_runqueue_count(queue_counts=(1, 2, 4), sandboxes=8)

    def test_balancing_keeps_imbalance_at_most_one(self, points):
        assert all(p.max_assignment_imbalance <= 1 for p in points)

    def test_resume_flat_across_queue_counts(self, points):
        values = {p.mean_resume_ns for p in points}
        assert max(values) - min(values) < 5.0

    def test_more_queues_less_refresh_per_resume(self, points):
        """Fewer sandboxes tied per queue -> fewer precompute refreshes
        when one of them resumes."""
        per_resume = [p.refresh_entries_per_resume for p in points]
        assert per_resume == sorted(per_resume, reverse=True)


class TestPrecomputeChurn:
    @pytest.fixture(scope="class")
    def points(self):
        return ablate_precompute_churn(churn_levels=(0, 10, 50))

    def test_refresh_work_scales_with_churn(self, points):
        entries = [p.refresh_entries for p in points]
        assert entries == sorted(entries)
        assert entries[0] == 0 and entries[-1] > 0

    def test_refresh_operations_count_tied_sandboxes(self, points):
        churn_10 = points[1]
        assert churn_10.refresh_operations == (
            churn_10.churn_events * churn_10.tied_sandboxes
        )

    def test_entries_per_event_stable(self, points):
        busy = [p for p in points if p.churn_events]
        ratios = [p.entries_per_event for p in busy]
        assert max(ratios) / min(ratios) < 1.5


class TestPlatformAblation:
    @pytest.fixture(scope="class")
    def comparisons(self):
        return ablate_platform(vcpus=16, repetitions=3)

    def test_both_platforms_present(self, comparisons):
        assert {c.platform for c in comparisons} == {"firecracker", "xen"}

    def test_horse_wins_on_both_schedulers(self, comparisons):
        for comparison in comparisons:
            assert comparison.speedup > 5.0, comparison

    def test_xen_vanilla_slower(self, comparisons):
        by_name = {c.platform: c for c in comparisons}
        assert by_name["xen"].vanil_ns > by_name["firecracker"].vanil_ns


class TestMechanismSplit:
    @pytest.fixture(scope="class")
    def split(self):
        return ablate_mechanism_split(vcpus=36)

    def test_merge_is_the_largest_saving(self, split):
        assert split.share_of_saving(STEP_MERGE) > 0.5

    def test_load_update_is_second(self, split):
        shares = {
            step: split.share_of_saving(step) for step in split.steps
        }
        ordered = sorted(shares, key=shares.get, reverse=True)
        assert ordered[0] == STEP_MERGE
        assert ordered[1] == STEP_LOAD

    def test_every_step_saves_or_breaks_even(self, split):
        for step in split.steps:
            assert split.saving_ns(step) >= 0.0, step

    def test_total_saving_matches_figure3_gap(self, split):
        """Sum of per-step savings ~= vanil(36) - horse(36)."""
        assert split.total_saving_ns() == pytest.approx(1667 - 132, rel=0.05)
