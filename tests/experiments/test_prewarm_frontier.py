"""Prewarm frontier: the headline ordering must hold, not just run.

The claim under test (fast mode, seed 0): at the tight memory budget
only the hybrid-histogram policy keeps p99 init latency on the
HORSE-pausable tier; fixed keep-alive falls to the snapshot-restore
tier and only catches up at the ample budget (~1.6x the memory).
These tests pin that *ordering* — the frontier's story — rather than
exact latencies, so workload recalibration can move numbers without
breaking the experiment's meaning.
"""

import pytest

from repro.experiments.prewarm_frontier import (
    FRONTIER_BUDGET_FRACTIONS,
    FRONTIER_POLICIES,
    frontier_config,
    prewarm_frontier_rows,
    render_prewarm_frontier,
    run_prewarm_frontier,
)

HORSE_TIER_US = 1.0          # well above 0.132, well below restore
RESTORE_TIER_US = 1000.0     # ~1300 us


@pytest.fixture(scope="module")
def result():
    return run_prewarm_frontier(fast=True, seed=0)


@pytest.fixture(scope="module")
def by_cell(result):
    return {
        (row["policy"], row["budget_mb"]): row
        for row in prewarm_frontier_rows(result)
    }


class TestSweepShape:
    def test_full_grid_present(self, result):
        budgets = [float(b) for b in result.config.budgets_mb()]
        assert len(budgets) == len(FRONTIER_BUDGET_FRACTIONS) >= 3
        assert len(FRONTIER_POLICIES) >= 3
        assert set(result.cells) == {
            (policy, budget)
            for policy in FRONTIER_POLICIES
            for budget in budgets
        }

    def test_rows_are_flat_scalars_sorted_by_budget_then_policy(self, result):
        rows = prewarm_frontier_rows(result)
        keys = [(row["budget_mb"], row["policy"]) for row in rows]
        assert keys == sorted(keys)
        for row in rows:
            for key, value in row.items():
                assert isinstance(value, (str, int, float)), key

    def test_every_cell_replays_the_same_trace(self, result):
        events = {cell.events for cell in result.cells.values()}
        assert len(events) == 1      # policy must not change the workload

    def test_no_invariant_violations(self, result):
        assert result.violations() == []


class TestFrontierOrdering:
    def tight(self, result):
        return float(result.config.budgets_mb()[0])

    def ample(self, result):
        return float(result.config.budgets_mb()[-1])

    def test_hybrid_holds_horse_tier_at_tight_budget(self, result, by_cell):
        row = by_cell[("hybrid-10", self.tight(result))]
        assert row["p99_us"] < HORSE_TIER_US
        assert row["prewarm_loads"] > 0          # it got there by prewarming

    def test_fixed_windows_fall_to_restore_tier_at_tight_budget(
        self, result, by_cell
    ):
        for policy in ("fixed-120", "fixed-600"):
            row = by_cell[(policy, self.tight(result))]
            assert row["p99_us"] >= RESTORE_TIER_US
            assert row["evictions"] > 0          # pressure is why

    def test_fixed_600_catches_up_at_ample_budget(self, result, by_cell):
        row = by_cell[("fixed-600", self.ample(result))]
        assert row["p99_us"] < HORSE_TIER_US
        # The headline: same tail as hybrid, ~1.6x the memory.
        assert self.ample(result) / self.tight(result) >= 1.5

    def test_no_keep_alive_restores_at_every_budget(self, result, by_cell):
        for budget in result.config.budgets_mb():
            row = by_cell[("none", float(budget))]
            assert row["p50_us"] >= RESTORE_TIER_US
            assert row["horse_hits"] == 0

    def test_hybrid_memory_footprint_stays_under_fixed(self, result, by_cell):
        tight = self.tight(result)
        hybrid = by_cell[("hybrid-10", tight)]
        assert hybrid["peak_resident_mb"] <= tight


class TestRendering:
    def test_render_names_the_winner_at_tight_budget(self, result):
        text = render_prewarm_frontier(result)
        tight = float(result.config.budgets_mb()[0])
        assert f"HORSE-tier p99 at the tight budget ({tight:.0f} MB): hybrid-10" in text
        assert "invariant violations: 0" in text

    def test_render_deterministic(self, result):
        assert render_prewarm_frontier(result) == render_prewarm_frontier(
            run_prewarm_frontier(fast=True, seed=0)
        )


class TestRegistryIntegration:
    def test_registered_spec_runs_fast_mode(self):
        from repro.experiments.registry import ExperimentConfig, get

        spec = get("prewarm_frontier")
        run = spec.run(ExperimentConfig(fast=True, seed=0))
        rows = run.rows()
        assert {row["policy"] for row in rows} == set(FRONTIER_POLICIES)
        assert "HORSE-tier p99" in run.summary()

    def test_full_mode_config_scales_up(self):
        fast = frontier_config(fast=True, seed=0)
        full = frontier_config(fast=False, seed=0)
        assert full.functions > fast.functions
        assert full.duration_s > fast.duration_s
