"""Restore prefetch ablation."""

import pytest

from repro.experiments.ablations_restore import ablate_restore_prefetch
from repro.sim.units import microseconds


@pytest.fixture(scope="module")
def points():
    return ablate_restore_prefetch()


class TestTradeoff:
    def test_full_prefetch_matches_paper_restore(self, points):
        full = points[-1]
        assert full.prefetch_fraction == 1.0
        assert full.restore_ns == pytest.approx(microseconds(1300), rel=0.01)
        assert full.first_request_penalty_ns == 0

    def test_restore_grows_with_prefetch(self, points):
        restores = [p.restore_ns for p in points]
        assert restores == sorted(restores)

    def test_penalty_shrinks_with_prefetch(self, points):
        penalties = [p.first_request_penalty_ns for p in points]
        assert penalties == sorted(penalties, reverse=True)

    def test_zero_prefetch_pays_all_faults(self, points):
        lazy = points[0]
        assert lazy.prefetched_pages == 0
        assert lazy.first_request_penalty_ns > lazy.restore_ns

    def test_full_prefetch_minimizes_effective_readiness(self, points):
        """Faults cost ~6x a prefetch, so eager prefetch wins on the
        effective metric — the FaaSnap design point."""
        effective = [p.effective_ready_ns for p in points]
        assert min(effective) == effective[-1]

    def test_no_point_near_warm_territory(self, points):
        """The paper's argument: even the best restore point is ~3
        orders of magnitude above a ~1 us warm resume."""
        assert min(p.effective_ready_ns for p in points) > microseconds(100)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            ablate_restore_prefetch(fractions=(1.5,))
