"""Azure-like trace synthesis: structure and statistics."""

import random

import pytest

from repro.sim.units import SECOND
from repro.traces.azure import (
    AzureTraceConfig,
    burst_arrival_stream,
    synthesize_trace,
)


def make_trace(seed=0, **overrides):
    defaults = dict(functions=20, duration_s=30.0, mean_rate_per_function=1.0)
    defaults.update(overrides)
    return synthesize_trace(AzureTraceConfig(**defaults), random.Random(seed))


class TestConfig:
    def test_bad_function_count(self):
        with pytest.raises(ValueError):
            AzureTraceConfig(functions=0)

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            AzureTraceConfig(duration_s=0)

    def test_bad_burst_fraction(self):
        with pytest.raises(ValueError):
            AzureTraceConfig(burst_on_fraction=0.0)

    def test_bad_burst_length(self):
        with pytest.raises(ValueError):
            AzureTraceConfig(burst_mean_length_s=0.0)


class TestBurstArrivalStream:
    """Edge cases the streaming replayer leans on."""

    def make_config(self, **overrides):
        defaults = dict(functions=1, duration_s=60.0)
        defaults.update(overrides)
        return AzureTraceConfig(**defaults)

    def test_negative_rate_rejected(self):
        stream = burst_arrival_stream(
            -1.0, 60.0, self.make_config(), random.Random(0)
        )
        with pytest.raises(ValueError):
            next(stream)

    def test_zero_rate_is_empty_and_consumes_no_draws(self):
        # A dead function must not perturb the rng it was handed —
        # the replayer derives neighbouring state from the same stream.
        rng = random.Random(0)
        before = rng.getstate()
        assert list(burst_arrival_stream(0.0, 60.0, self.make_config(), rng)) == []
        assert rng.getstate() == before

    def test_always_on_fraction_degenerates_to_poisson(self):
        # burst_on_fraction == 1 used to divide by a zero mean-off
        # period; now it runs one uninterrupted Poisson process.
        config = self.make_config(burst_on_fraction=1.0)
        arrivals = list(
            burst_arrival_stream(10.0, 60.0, config, random.Random(1))
        )
        assert len(arrivals) == pytest.approx(600, rel=0.3)
        assert arrivals == sorted(arrivals)

    def test_stream_matches_legacy_materialized_order(self):
        # Same rng, same draw sequence: streaming is a pure refactor of
        # the old list builder.
        config = self.make_config()
        streamed = list(
            burst_arrival_stream(5.0, 60.0, config, random.Random(2))
        )
        assert streamed == sorted(streamed)
        assert streamed == list(
            burst_arrival_stream(5.0, 60.0, config, random.Random(2))
        )

    def test_window_respected(self):
        config = self.make_config()
        horizon = round(60.0 * SECOND)
        for t in burst_arrival_stream(20.0, 60.0, config, random.Random(3)):
            assert 0 <= t <= horizon

    def test_exhaustion_mid_window_is_clean(self):
        # A slow stream may produce nothing at all; the generator must
        # terminate (not hang) and be safely re-drainable.
        config = self.make_config(duration_s=0.001)
        stream = burst_arrival_stream(0.01, 0.001, config, random.Random(4))
        assert list(stream) == []
        assert list(stream) == []         # exhausted generators stay empty


class TestStructure:
    def test_function_count(self):
        trace = make_trace()
        assert len(trace.function_names()) == 20

    def test_timestamps_within_duration(self):
        trace = make_trace()
        horizon = 30 * SECOND
        for timestamps in trace.invocations.values():
            assert all(0 <= t < horizon + SECOND for t in timestamps)

    def test_timestamps_sorted(self):
        trace = make_trace()
        for timestamps in trace.invocations.values():
            assert timestamps == sorted(timestamps)

    def test_merged_timestamps_sorted_and_complete(self):
        trace = make_trace()
        merged = trace.merged_timestamps()
        assert merged == sorted(merged)
        assert len(merged) == trace.total_invocations

    def test_deterministic_given_seed(self):
        assert make_trace(seed=5).invocations == make_trace(seed=5).invocations

    def test_different_seeds_differ(self):
        assert make_trace(seed=1).invocations != make_trace(seed=2).invocations

    def test_timestamps_for_returns_arrival_process(self):
        trace = make_trace()
        name = trace.function_names()[0]
        process = trace.timestamps_for(name)
        assert len(process) == len(trace.invocations[name])

    def test_unknown_function_raises(self):
        with pytest.raises(KeyError):
            make_trace().timestamps_for("ghost")


class TestStatistics:
    def test_total_rate_near_configured_mean(self):
        trace = make_trace(seed=3, functions=40, duration_s=60.0)
        total_rate = trace.total_invocations / 60.0
        # 40 functions at ~1/s mean
        assert total_rate == pytest.approx(40.0, rel=0.5)

    def test_rates_are_heavy_tailed(self):
        """A few functions should dominate: top-10% of functions carry
        far more than 10% of invocations (Pareto-tailed rates)."""
        trace = make_trace(seed=4, functions=50, duration_s=120.0)
        counts = sorted(
            (len(ts) for ts in trace.invocations.values()), reverse=True
        )
        top5 = sum(counts[:5])
        total = sum(counts)
        assert total > 0
        assert top5 / total > 0.25

    def test_rate_per_second_helper(self):
        trace = make_trace(seed=0)
        name = trace.function_names()[0]
        expected = len(trace.invocations[name]) / 30.0
        assert trace.rate_per_second(name) == pytest.approx(expected)

    def test_bursty_interarrivals(self):
        """The MMPP construction should produce inter-arrival CV > 1
        (the Azure dataset's signature burstiness)."""
        trace = make_trace(seed=6, functions=1, mean_rate_per_function=20.0,
                           duration_s=120.0)
        timestamps = trace.invocations[trace.function_names()[0]]
        assert len(timestamps) > 100
        gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
        mean_gap = sum(gaps) / len(gaps)
        var = sum((g - mean_gap) ** 2 for g in gaps) / (len(gaps) - 1)
        cv = var ** 0.5 / mean_gap
        assert cv > 1.0
