"""Trace characterization statistics."""

import random

import pytest

from repro.sim.units import SECOND
from repro.traces.azure import AzureTraceConfig, synthesize_trace
from repro.traces.stats import (
    burstiness_index,
    gini_coefficient,
    interarrival_cv,
    interarrival_gaps,
    profile_trace,
    top_k_share,
)


class TestInterarrival:
    def test_gaps(self):
        assert interarrival_gaps([30, 10, 20]) == [10, 10]

    def test_regular_arrivals_cv_zero(self):
        timestamps = list(range(0, 1000, 100))
        assert interarrival_cv(timestamps) == pytest.approx(0.0)

    def test_poisson_cv_near_one(self):
        rng = random.Random(0)
        now = 0.0
        timestamps = []
        for _ in range(5000):
            now += rng.expovariate(1.0)
            timestamps.append(round(now * 1e6))
        assert interarrival_cv(timestamps) == pytest.approx(1.0, abs=0.05)

    def test_too_few_arrivals_rejected(self):
        with pytest.raises(ValueError):
            interarrival_cv([1, 2])

    def test_burstiness_zero_for_poisson_like(self):
        rng = random.Random(1)
        now = 0.0
        timestamps = []
        for _ in range(5000):
            now += rng.expovariate(1.0)
            timestamps.append(round(now * 1e6))
        assert burstiness_index(timestamps) == pytest.approx(0.0, abs=0.05)

    def test_burstiness_negative_for_regular(self):
        assert burstiness_index(list(range(0, 1000, 10))) == pytest.approx(-1.0)


class TestTailMeasures:
    def test_top_k_share(self):
        counts = {"a": 90, "b": 5, "c": 5}
        assert top_k_share(counts, 1) == pytest.approx(0.9)
        assert top_k_share(counts, 3) == pytest.approx(1.0)

    def test_top_k_empty_counts(self):
        assert top_k_share({"a": 0}, 1) == 0.0

    def test_top_k_bad_k(self):
        with pytest.raises(ValueError):
            top_k_share({"a": 1}, 0)

    def test_gini_equal_shares_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_gini_total_concentration(self):
        # one holder of everything among many: -> 1 as n grows
        assert gini_coefficient([0] * 99 + [100]) == pytest.approx(0.99, abs=0.01)

    def test_gini_known_value(self):
        # [1, 3]: mean abs diff = 2, mean = 2 -> G = 2/(2*2*... ) = 0.25
        assert gini_coefficient([1, 3]) == pytest.approx(0.25)

    def test_gini_rejects_negative(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1, 1])

    def test_gini_empty_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([])


class TestProfile:
    def test_synthesized_trace_matches_dataset_structure(self):
        """The synthesizer's whole point: bursty (B > 0) and
        heavy-tailed (top 10 % of functions carry >> 10 %)."""
        trace = synthesize_trace(
            AzureTraceConfig(
                functions=40, duration_s=120.0, mean_rate_per_function=1.0
            ),
            random.Random(7),
        )
        profile = profile_trace(trace.invocations)
        assert profile.functions == 40
        assert profile.merged_burstiness > 0.0
        assert profile.top_10pct_share > 0.2
        assert profile.rate_gini > 0.3

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            profile_trace({})

    def test_sparse_trace_rejected(self):
        with pytest.raises(ValueError):
            profile_trace({"f": [1]})
