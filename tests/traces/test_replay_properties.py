"""Differential-oracle property battery for the streaming replayer.

The streamed merge must be indistinguishable from the naive
materialize-and-sort oracle for *any* (seed, function count, rate skew)
— same events, same order, byte for byte — while never buffering more
than one pending event per live stream.  Same idiom as the P2SM/coalesce
differential batteries: a trivially-correct reference implementation is
the spec, hypothesis explores the configuration space.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.replay import (
    ReplayConfig,
    ReplayStats,
    materialized_oracle,
    merged_stream,
)

# Small windows keep each example cheap; the production-cardinality
# scale claims are covered by the soak test in test_replay.py.
replay_configs = st.builds(
    ReplayConfig,
    functions=st.integers(min_value=1, max_value=48),
    duration_s=st.floats(min_value=30.0, max_value=900.0),
    seed=st.integers(min_value=0, max_value=2**32),
    mean_rate_per_function=st.floats(min_value=0.0, max_value=1.0),
    pareto_shape=st.floats(min_value=1.05, max_value=4.0),
    burst_on_fraction=st.floats(min_value=0.05, max_value=1.0),
    burst_mean_length_s=st.floats(min_value=1.0, max_value=120.0),
    idle_fraction=st.floats(min_value=0.0, max_value=0.5),
    periodic_fraction=st.floats(min_value=0.0, max_value=0.5),
    period_min_s=st.just(10.0),
    period_max_s=st.floats(min_value=10.0, max_value=600.0),
    period_jitter=st.floats(min_value=0.0, max_value=0.45),
)


@settings(max_examples=60, deadline=None)
@given(config=replay_configs)
def test_streamed_equals_materialized_oracle(config):
    """Byte-identical to the oracle: same tuples, same order."""
    assert list(merged_stream(config)) == materialized_oracle(config)


@settings(max_examples=60, deadline=None)
@given(config=replay_configs)
def test_streamed_is_time_ordered_and_complete(config):
    stats = ReplayStats()
    events = list(merged_stream(config, stats))
    # Time-ordered under the pinned (t, index, seq) tie-break.
    assert events == sorted(events)
    # Complete: every stream's events survive the merge, in order, with
    # gapless per-function sequence numbers.
    seen = {}
    for t, index, seq in events:
        assert seq == seen.get(index, 0)
        seen[index] = seq + 1
    assert stats.events == len(events)
    assert stats.exhausted_streams == config.functions


@settings(max_examples=60, deadline=None)
@given(config=replay_configs)
def test_buffering_never_exceeds_stream_count(config):
    stats = ReplayStats()
    for _ in merged_stream(config, stats):
        pass
    assert stats.peak_buffered <= config.functions


@settings(max_examples=30, deadline=None)
@given(config=replay_configs)
def test_same_config_is_byte_identical(config):
    assert list(merged_stream(config)) == list(merged_stream(config))
