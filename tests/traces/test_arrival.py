"""Arrival processes."""

import random

import pytest

from repro.sim.units import SECOND, milliseconds
from repro.traces.arrival import (
    DeterministicArrivals,
    PoissonArrivals,
    TraceDrivenArrivals,
)


class TestDeterministic:
    def test_fixed_period(self):
        arrivals = DeterministicArrivals(period_ns=100).arrival_list(0, 350)
        assert arrivals == [0, 100, 200, 300]

    def test_offset(self):
        arrivals = DeterministicArrivals(period_ns=100, offset_ns=30).arrival_list(0, 250)
        assert arrivals == [30, 130, 230]

    def test_window_clipping(self):
        arrivals = DeterministicArrivals(period_ns=100).arrival_list(150, 350)
        assert arrivals == [150, 250]

    def test_empty_window(self):
        assert DeterministicArrivals(100).arrival_list(10, 10) == []

    def test_ten_per_second(self):
        """The paper's '10 uLL workloads per second' cadence."""
        period = SECOND // 10
        arrivals = DeterministicArrivals(period).arrival_list(0, SECOND)
        assert len(arrivals) == 10

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            DeterministicArrivals(0)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            DeterministicArrivals(100, offset_ns=-1)


class TestPoisson:
    def test_rate_approximately_respected(self):
        process = PoissonArrivals(rate_per_second=100.0, rng=random.Random(0))
        arrivals = process.arrival_list(0, 10 * SECOND)
        assert len(arrivals) == pytest.approx(1000, rel=0.15)

    def test_strictly_increasing(self):
        process = PoissonArrivals(50.0, random.Random(1))
        arrivals = process.arrival_list(0, SECOND)
        assert all(a < b for a, b in zip(arrivals, arrivals[1:]))

    def test_window_respected(self):
        process = PoissonArrivals(1000.0, random.Random(2))
        arrivals = process.arrival_list(milliseconds(100), milliseconds(200))
        assert all(milliseconds(100) <= t < milliseconds(200) for t in arrivals)

    def test_deterministic_given_seed(self):
        a = PoissonArrivals(10.0, random.Random(7)).arrival_list(0, SECOND)
        b = PoissonArrivals(10.0, random.Random(7)).arrival_list(0, SECOND)
        assert a == b

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0, random.Random(0))

    def test_zero_rate_yields_empty_stream(self):
        # A dead function (Azure's long idle tail) is a valid process
        # that simply never fires — not a configuration error.
        process = PoissonArrivals(0.0, random.Random(0))
        assert process.arrival_list(0, 10**12) == []


class TestTraceDriven:
    def test_replays_sorted(self):
        process = TraceDrivenArrivals([300, 100, 200])
        assert process.arrival_list(0, 1000) == [100, 200, 300]

    def test_window_filter(self):
        process = TraceDrivenArrivals([100, 200, 300])
        assert process.arrival_list(150, 300) == [200]

    def test_len(self):
        assert len(TraceDrivenArrivals([1, 2, 3])) == 3

    def test_negative_timestamps_rejected(self):
        with pytest.raises(ValueError):
            TraceDrivenArrivals([-1, 5])
