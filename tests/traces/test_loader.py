"""Azure CSV loader."""

import random

import pytest

from repro.sim.units import SECOND
from repro.traces.loader import TraceFormatError, load_azure_invocations_csv


def write_csv(tmp_path, text):
    path = tmp_path / "trace.csv"
    path.write_text(text)
    return path


VALID = (
    "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n"
    "o1,a1,func-a,http,2,0,1\n"
    "o2,a2,func-b,queue,0,3,0\n"
)


class TestLoader:
    def test_loads_functions_and_counts(self, tmp_path):
        trace = load_azure_invocations_csv(
            write_csv(tmp_path, VALID), random.Random(0)
        )
        assert sorted(trace.invocations) == ["func-a", "func-b"]
        assert len(trace.invocations["func-a"]) == 3
        assert len(trace.invocations["func-b"]) == 3

    def test_timestamps_fall_in_their_minute(self, tmp_path):
        trace = load_azure_invocations_csv(
            write_csv(tmp_path, VALID), random.Random(0)
        )
        minute = 60 * SECOND
        for t in trace.invocations["func-b"]:
            assert minute <= t < 2 * minute  # all counts in minute "2"

    def test_timestamps_sorted(self, tmp_path):
        trace = load_azure_invocations_csv(
            write_csv(tmp_path, VALID), random.Random(1)
        )
        for timestamps in trace.invocations.values():
            assert timestamps == sorted(timestamps)

    def test_max_functions_limits_rows(self, tmp_path):
        trace = load_azure_invocations_csv(
            write_csv(tmp_path, VALID), random.Random(0), max_functions=1
        )
        assert list(trace.invocations) == ["func-a"]

    def test_max_minutes_truncates(self, tmp_path):
        trace = load_azure_invocations_csv(
            write_csv(tmp_path, VALID), random.Random(0), max_minutes=1
        )
        assert len(trace.invocations["func-a"]) == 2
        assert len(trace.invocations["func-b"]) == 0

    def test_duration_follows_minutes(self, tmp_path):
        trace = load_azure_invocations_csv(
            write_csv(tmp_path, VALID), random.Random(0)
        )
        assert trace.config.duration_s == 180.0

    def test_no_minute_columns_rejected(self, tmp_path):
        path = write_csv(tmp_path, "HashFunction,Trigger\nf,http\n")
        with pytest.raises(TraceFormatError):
            load_azure_invocations_csv(path, random.Random(0))

    def test_non_integer_count_rejected(self, tmp_path):
        path = write_csv(
            tmp_path, "HashFunction,1\nf,notanumber\n"
        )
        with pytest.raises(TraceFormatError):
            load_azure_invocations_csv(path, random.Random(0))

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            load_azure_invocations_csv(path, random.Random(0))
