"""Streaming replayer: ordering, tie-break, bounded buffering, scale.

The property-based differential battery lives in
``test_replay_properties.py``; this file pins the deterministic
contracts with hand-built cases plus the production-cardinality soak
(marked ``soak``; tier-1 skips it via the default ``-m "not soak"``).
"""

import pytest

from repro.traces.replay import (
    ReplayConfig,
    ReplayStats,
    SplitMix64,
    arrival_stream,
    function_profile,
    materialized_oracle,
    merged_stream,
    stream_seed,
)


class TestSplitMix64:
    def test_reference_sequence(self):
        # SplitMix64 with seed 0 is pinned in the literature; guard the
        # constants against typos (first outputs of the reference impl).
        rng = SplitMix64(0)
        assert rng.next_u64() == 0xE220A8397B1DCDAF
        assert rng.next_u64() == 0x6E789E6AA1B965F4
        assert rng.next_u64() == 0x06C45D188009454F

    def test_random_in_unit_interval(self):
        rng = SplitMix64(1234)
        values = [rng.random() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_expovariate_positive(self):
        rng = SplitMix64(99)
        assert all(rng.expovariate(2.0) > 0 for _ in range(100))

    def test_paretovariate_at_least_one(self):
        rng = SplitMix64(7)
        assert all(rng.paretovariate(1.5) >= 1.0 for _ in range(100))

    def test_streams_independent_of_each_other(self):
        a = [SplitMix64(stream_seed(0, 0)).next_u64() for _ in range(4)]
        b = [SplitMix64(stream_seed(0, 1)).next_u64() for _ in range(4)]
        assert a != b

    def test_stream_seed_stable(self):
        # sha256-derived: must never drift across Python versions.
        assert stream_seed(0, 0) == stream_seed(0, 0)
        assert stream_seed(0, 1) != stream_seed(1, 0)


class TestReplayConfig:
    def test_defaults_valid(self):
        ReplayConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"functions": 0},
            {"duration_s": 0.0},
            {"mean_rate_per_function": -0.1},
            {"pareto_shape": 1.0},
            {"burst_on_fraction": 0.0},
            {"burst_mean_length_s": 0.0},
            {"idle_fraction": 1.2},
            {"periodic_fraction": -0.1},
            {"idle_fraction": 0.7, "periodic_fraction": 0.7},
            {"period_min_s": 0.0},
            {"period_min_s": 600.0, "period_max_s": 60.0},
            {"period_jitter": 0.6},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ReplayConfig(**kwargs)


class TestFunctionProfile:
    def test_cohorts_cover_population(self):
        config = ReplayConfig(functions=300, seed=5)
        kinds = {
            function_profile(config, index).kind
            for index in range(config.functions)
        }
        assert kinds == {"idle", "periodic", "bursty"}

    def test_profile_is_deterministic_and_per_function(self):
        config = ReplayConfig(functions=50, seed=9)
        first = [function_profile(config, i) for i in range(50)]
        second = [function_profile(config, i) for i in range(50)]
        assert first == second

    def test_periodic_period_in_range(self):
        config = ReplayConfig(
            functions=200, seed=1, period_min_s=60.0, period_max_s=600.0
        )
        for index in range(config.functions):
            profile = function_profile(config, index)
            if profile.kind == "periodic":
                assert 60.0 <= profile.period_s <= 600.0
                assert 0.0 <= profile.phase_s <= profile.period_s

    def test_out_of_range_index_rejected(self):
        config = ReplayConfig(functions=4)
        with pytest.raises(ValueError):
            function_profile(config, 4)

    def test_idle_fraction_one_means_all_idle(self):
        config = ReplayConfig(
            functions=20, idle_fraction=1.0, periodic_fraction=0.0
        )
        assert all(
            function_profile(config, i).kind == "idle" for i in range(20)
        )


class TestArrivalStream:
    def test_idle_function_stream_empty(self):
        config = ReplayConfig(functions=30, idle_fraction=1.0,
                              periodic_fraction=0.0)
        for index in range(config.functions):
            assert list(arrival_stream(config, index)) == []

    def test_streams_nondecreasing_and_in_window(self):
        config = ReplayConfig(functions=60, duration_s=300.0, seed=3,
                              mean_rate_per_function=0.1)
        end_ns = round(config.duration_s * 1e9)
        for index in range(config.functions):
            timestamps = list(arrival_stream(config, index))
            assert timestamps == sorted(timestamps)
            # <= not <: bursty draws strictly inside the window can
            # round up to the ns boundary itself.
            assert all(0 <= t <= end_ns for t in timestamps)

    def test_stream_restartable(self):
        # Generators are single-shot, but a fresh call replays the same
        # sequence: the per-function PRNG state is derived, not shared.
        config = ReplayConfig(functions=10, duration_s=600.0, seed=11)
        for index in range(config.functions):
            assert list(arrival_stream(config, index)) == list(
                arrival_stream(config, index)
            )


class TestMergedStream:
    def make_config(self, **kwargs):
        base = dict(functions=80, duration_s=600.0, seed=21,
                    mean_rate_per_function=0.2)
        base.update(kwargs)
        return ReplayConfig(**base)

    def test_matches_materialized_oracle(self):
        config = self.make_config()
        assert list(merged_stream(config)) == materialized_oracle(config)

    def test_time_ordered_with_pinned_tie_break(self):
        config = self.make_config()
        events = list(merged_stream(config))
        # (t, index, seq) must be lexicographically sorted: duplicates
        # at merge boundaries order by function index, then sequence.
        assert events == sorted(events)

    def test_complete_per_function(self):
        config = self.make_config(functions=25)
        by_fn = {}
        for t, index, seq in merged_stream(config):
            assert seq == len(by_fn.setdefault(index, []))
            by_fn[index].append(t)
        for index in range(config.functions):
            assert by_fn.get(index, []) == list(arrival_stream(config, index))

    def test_buffering_bounded_by_function_count(self):
        config = self.make_config(functions=120)
        stats = ReplayStats()
        events = sum(1 for _ in merged_stream(config, stats))
        assert stats.events == events
        assert stats.peak_buffered <= config.functions
        assert events > config.functions  # the bound is about streams,
        # not events: far more events flow through than are ever held.

    def test_exhausted_streams_counted(self):
        config = self.make_config(functions=40)
        stats = ReplayStats()
        for _ in merged_stream(config, stats):
            pass
        assert stats.exhausted_streams == config.functions

    def test_subset_indices(self):
        config = self.make_config(functions=30)
        subset = [3, 7, 21]
        events = list(merged_stream(config, indices=subset))
        assert {index for _, index, _ in events} <= set(subset)
        full = [e for e in materialized_oracle(config) if e[1] in subset]
        assert events == full

    def test_same_seed_identical_different_seed_not(self):
        config = self.make_config()
        assert list(merged_stream(config)) == list(merged_stream(config))
        other = self.make_config(seed=22)
        assert list(merged_stream(config)) != list(merged_stream(other))


@pytest.mark.soak
class TestProductionCardinality:
    """50k functions x 1h: the bounded-memory regression (CI replay job)."""

    def test_bounded_buffering_at_50k_functions(self):
        config = ReplayConfig(functions=50_000, duration_s=3600.0, seed=0)
        stats = ReplayStats()
        last_t = -1
        events = 0
        for t, _index, _seq in merged_stream(config, stats):
            assert t >= last_t
            last_t = t
            events += 1
        # The hard ceiling: the merge never holds more pending events
        # than there are live streams, independent of event count.
        assert stats.peak_buffered <= config.functions
        # And the measured profile stays in its calibrated envelope —
        # a default-config drift that changes cardinality 10x would
        # silently invalidate the scale claims elsewhere.
        assert 1_000_000 < events < 2_000_000
        assert stats.peak_buffered < events / 10
