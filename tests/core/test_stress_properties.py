"""Property/stress tests across the pause/resume machinery.

These drive randomized interleavings of lifecycle operations over many
sandboxes and check the global invariants that must survive *any*
schedule: queues stay sorted, sizes match, no vCPU is lost or
duplicated, assignments stay consistent.  This class of test is what
catches cross-sandbox staleness bugs (e.g. arrayB referencing unlinked
nodes after another sandbox's pause).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hot_resume import HorseConfig, HorsePauseResume
from repro.hypervisor.platform import firecracker_platform
from repro.hypervisor.sandbox import Sandbox, SandboxState
from repro.hypervisor.vcpu import VcpuState


def check_global_invariants(virt, sandboxes, horse):
    """Invariants that must hold between any two operations."""
    # 1. Every run queue is sorted with a consistent size counter.
    for runqueue in virt.host.runqueues.values():
        runqueue.check_invariants()
    # 2. vCPU placement matches sandbox state; no vCPU lost/duplicated.
    queued_ids = [
        vcpu.vcpu_id
        for runqueue in virt.host.runqueues.values()
        for vcpu in runqueue.members()
    ]
    assert len(queued_ids) == len(set(queued_ids)), "vCPU duplicated on queues"
    queued = set(queued_ids)
    for sandbox in sandboxes:
        for vcpu in sandbox.vcpus:
            if sandbox.state is SandboxState.RUNNING:
                assert vcpu.vcpu_id in queued, f"{vcpu!r} lost while running"
            elif sandbox.state is SandboxState.PAUSED:
                assert vcpu.vcpu_id not in queued, f"{vcpu!r} leaked on a queue"
    # 3. Assignment table consistent with sandbox attributes.
    for queue_id, members in (
        (qid, horse.ull.assigned_to(qid)) for qid in horse.ull.queue_ids
    ):
        for sandbox in members:
            assert sandbox.assigned_ull_runqueue == queue_id


# Each op is (sandbox_index, action); actions resolve to legal
# operations at runtime: pause if running, resume if paused.
@st.composite
def operation_sequences(draw):
    count = draw(st.integers(min_value=2, max_value=5))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=count - 1),
                st.sampled_from(["toggle", "toggle", "vanilla_resume"]),
            ),
            min_size=1,
            max_size=30,
        )
    )
    vcpus = draw(st.integers(min_value=1, max_value=6))
    return count, vcpus, ops


class TestRandomInterleavings:
    @given(operation_sequences())
    @settings(max_examples=40, deadline=None)
    def test_invariants_survive_any_schedule(self, scenario):
        count, vcpus, ops = scenario
        virt = firecracker_platform(reserved_ull_cores=2)
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        sandboxes = []
        for _ in range(count):
            sandbox = Sandbox(vcpus=vcpus, memory_mb=128, is_ull=True)
            virt.vanilla.place_initial(sandbox, 0)
            sandboxes.append(sandbox)

        now = 0
        for index, action in ops:
            now += 1_000
            sandbox = sandboxes[index]
            if action == "toggle":
                if sandbox.state is SandboxState.RUNNING:
                    horse.pause(sandbox, now)
                elif sandbox.state is SandboxState.PAUSED:
                    horse.resume(sandbox, now)
            elif action == "vanilla_resume":
                if sandbox.state is SandboxState.PAUSED:
                    virt.vanilla.resume(sandbox, now)
            check_global_invariants(virt, sandboxes, horse)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_repeated_cycles_preserve_flat_resume(self, vcpus, cycles):
        """However many pause/resume cycles, the HORSE resume cost
        stays identical — no state accumulates on the fast path."""
        virt = firecracker_platform()
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        sandbox = Sandbox(vcpus=vcpus, memory_mb=128, is_ull=True)
        virt.vanilla.place_initial(sandbox, 0)
        costs = set()
        for cycle in range(cycles):
            horse.pause(sandbox, cycle * 10)
            costs.add(horse.resume(sandbox, cycle * 10 + 5).total_ns)
        assert len(costs) == 1

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_all_paused_then_all_resumed_union(self, count):
        """Pausing N sandboxes then resuming them all yields a queue
        holding exactly the union of their vCPUs, sorted."""
        virt = firecracker_platform(reserved_ull_cores=1)
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        sandboxes = []
        for _ in range(count):
            sandbox = Sandbox(vcpus=3, memory_mb=128, is_ull=True)
            virt.vanilla.place_initial(sandbox, 0)
            horse.pause(sandbox, 0)
            sandboxes.append(sandbox)
        for sandbox in sandboxes:
            horse.resume(sandbox, 0)
        queue = horse.ull.queue(horse.ull.queue_ids[0])
        assert len(queue) == 3 * count
        queue.check_invariants()
        expected = {
            vcpu.vcpu_id for sandbox in sandboxes for vcpu in sandbox.vcpus
        }
        assert {vcpu.vcpu_id for vcpu in queue.members()} == expected


class TestConfigurationVariants:
    @pytest.mark.parametrize(
        "config",
        [HorseConfig.full(), HorseConfig.ppsm_only(), HorseConfig.coalescing_only()],
        ids=["horse", "ppsm", "coal"],
    )
    def test_ten_sandboxes_cycle_under_every_config(self, config):
        virt = firecracker_platform(reserved_ull_cores=2)
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs, config=config)
        sandboxes = []
        for _ in range(10):
            sandbox = Sandbox(vcpus=4, memory_mb=128, is_ull=True)
            virt.vanilla.place_initial(sandbox, 0)
            sandboxes.append(sandbox)
        for _ in range(3):
            for sandbox in sandboxes:
                horse.pause(sandbox, 0)
            for sandbox in sandboxes:
                horse.resume(sandbox, 0)
        check_global_invariants(virt, sandboxes, horse)
        for sandbox in sandboxes:
            assert all(v.state is VcpuState.RUNNABLE for v in sandbox.vcpus)


class TestDifferentialResume500:
    """Satellite differential suite: 500 seeded cases per property.

    Case generation is fully deterministic (RngRegistry streams), so a
    failure reproduces from the case index alone.
    """

    CASES = 500

    def test_500_resumes_match_the_vanilla_replay(self):
        """vanilla vs P2SM merge: for 500 randomized pause states the
        post-resume queue order must equal the vanilla per-element
        insert replay, and the load must match to the oracle's ULP
        budget (coalesced) or exactly (iterated)."""
        from repro.check import snapshot_before_resume, verify_resume
        from repro.sim.rng import RngRegistry

        configs = [
            HorseConfig.full(),
            HorseConfig.ppsm_only(),
            HorseConfig.coalescing_only(),
        ]
        rng = RngRegistry(1234).stream("diff500")
        virt = firecracker_platform(reserved_ull_cores=2)
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        for case in range(self.CASES):
            config = configs[case % len(configs)]
            horse.config = config
            # Randomized pause state: a fresh target sandbox amid a few
            # residents already resumed onto the reserved queues, all
            # with randomized vruntimes (the CFS sort key).
            residents = []
            for _ in range(rng.randrange(3)):
                resident = Sandbox(vcpus=rng.randrange(1, 4), memory_mb=64,
                                   is_ull=True)
                for vcpu in resident.vcpus:
                    vcpu.vruntime = rng.uniform(0.0, 50.0)
                virt.vanilla.place_initial(resident, 0)
                horse.pause(resident, 0)
                horse.resume(resident, 0)
                residents.append(resident)
            target = Sandbox(vcpus=rng.randrange(1, 7), memory_mb=64,
                             is_ull=True)
            for vcpu in target.vcpus:
                vcpu.vruntime = rng.uniform(0.0, 50.0)
            virt.vanilla.place_initial(target, 0)
            horse.pause(target, 0)
            snapshot = snapshot_before_resume(horse, target)
            assert snapshot is not None
            horse.resume(target, 0)
            problems = verify_resume(snapshot, horse, 0)
            assert problems == [], f"case {case} ({config}): {problems}"
            # Drain so queue occupancy varies but stays bounded.
            for sandbox in [target, *residents]:
                horse.pause(sandbox, 0)
                virt.vanilla.resume(sandbox, 0)

    def test_500_coalesced_folds_match_closed_form_to_zero_ulps(self):
        """The fused update must equal the closed form bit-for-bit and
        sit within the calibrated ULP budget of n-fold application."""
        from repro.check import DEFAULT_MAX_ULPS
        from repro.core.coalesce import (
            AffineUpdate,
            CoalescedUpdate,
            apply_n_times,
            ulps_apart,
        )
        from repro.hypervisor.load_tracking import DECAY_FACTOR
        from repro.sim.rng import RngRegistry

        rng = RngRegistry(99).stream("coalesce500")
        for case in range(self.CASES):
            weight = rng.choice([256.0, 512.0, 1024.0, 2048.0])
            alpha = DECAY_FACTOR
            beta = weight * (1.0 - DECAY_FACTOR)
            n = rng.randrange(1, 65)
            x = rng.uniform(0.0, 40_000.0)
            update = CoalescedUpdate.precompute(alpha, beta, n)
            # Closed form, recomputed independently of precompute().
            alpha_n = alpha ** n
            closed = alpha_n * x + beta * (1.0 - alpha_n) / (1.0 - alpha)
            assert ulps_apart(update.apply(x), closed) == 0, f"case {case}"
            iterated = apply_n_times(AffineUpdate(alpha, beta), x, n)
            gap = ulps_apart(update.apply(x), iterated)
            assert gap <= DEFAULT_MAX_ULPS, (
                f"case {case}: n={n} x={x}: {gap} ULPs"
            )
