"""P2SM: precomputation correctness and the O(1) merge phase."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linked_list import SortedLinkedList
from repro.core.p2sm import P2SMState, sorted_merge_reference


def make_target(values=()):
    lst = SortedLinkedList(key=lambda v: v)
    for value in values:
        lst.insert_sorted(value)
    return lst


class TestPrecompute:
    def test_array_b_mirrors_target(self):
        target = make_target([10, 20, 30])
        state = P2SMState([], target)
        assert len(state.array_b) == 4  # sentinel + 3 nodes
        assert state.array_b[0] is target.head
        assert [n.value for n in state.array_b[1:]] == [10, 20, 30]

    def test_pos_a_buckets_by_insertion_position(self):
        target = make_target([10, 30])
        state = P2SMState([5, 15, 20, 40], target)
        assert sorted(state.pos_a) == [0, 1, 2]
        assert state.pos_a[0].values() == [5]
        assert state.pos_a[1].values() == [15, 20]
        assert state.pos_a[2].values() == [40]

    def test_empty_target_single_bucket(self):
        state = P2SMState([3, 1, 2], make_target())
        assert sorted(state.pos_a) == [0]
        assert state.pos_a[0].values() == [1, 2, 3]

    def test_values_a_sorted_on_construction(self):
        state = P2SMState([3, 1, 2], make_target([10]))
        assert state.values_a == [1, 2, 3]

    def test_equal_keys_go_after_target_element(self):
        target = make_target([10])
        state = P2SMState([10], target)
        # key 10 ties with target's 10 -> position 1 (after it)
        assert sorted(state.pos_a) == [1]

    def test_report_counts(self):
        target = make_target([10, 20])
        state = P2SMState([5, 15], target)
        report = state.last_report
        assert report.array_entries == 3
        assert report.posa_keys == 2
        assert report.chain_nodes == 2
        assert report.memory_bytes > 0


class TestMerge:
    def test_merge_produces_sorted_union(self):
        target = make_target([10, 30])
        state = P2SMState([5, 20, 40], target)
        report = state.merge()
        assert target.to_list() == [5, 10, 20, 30, 40]
        assert target.is_sorted()
        assert target.check_size()
        assert report.merged_elements == 3

    def test_merge_into_empty_target(self):
        target = make_target()
        state = P2SMState([2, 1], target)
        state.merge()
        assert target.to_list() == [1, 2]

    def test_merge_empty_a_is_noop(self):
        target = make_target([1, 2])
        state = P2SMState([], target)
        report = state.merge()
        assert target.to_list() == [1, 2]
        assert report.threads == 0

    def test_thread_count_equals_posa_keys(self):
        target = make_target([10, 30])
        state = P2SMState([5, 20, 40], target)
        keys = len(state.pos_a)
        report = state.merge()
        assert report.threads == keys

    def test_two_pointer_writes_per_thread(self):
        target = make_target([10, 30])
        state = P2SMState([5, 20, 40], target)
        report = state.merge()
        assert report.pointer_writes == 2 * report.threads

    def test_merge_consumes_state(self):
        target = make_target([10])
        state = P2SMState([5], target)
        state.merge()
        assert state.pos_a == {}
        assert state.values_a == []

    def test_merge_does_not_scan(self):
        target = make_target([10, 20, 30])
        state = P2SMState([5, 15, 25, 35], target)
        target.reset_scan_counter()
        state.merge()
        assert target.scan_steps == 0


class TestIncrementalMaintenance:
    def test_add_to_a_appears_in_merge(self):
        target = make_target([10])
        state = P2SMState([5], target)
        state.add_to_a(15)
        state.merge()
        assert target.to_list() == [5, 10, 15]

    def test_add_keeps_values_sorted(self):
        state = P2SMState([5, 15], make_target([10]))
        state.add_to_a(1)
        state.add_to_a(20)
        assert state.values_a == [1, 5, 15, 20]

    def test_remove_from_a(self):
        target = make_target([10])
        state = P2SMState([5, 15], target)
        assert state.remove_from_a(15) is True
        state.merge()
        assert target.to_list() == [5, 10]

    def test_remove_missing_returns_false(self):
        state = P2SMState([5], make_target())
        assert state.remove_from_a(99) is False

    def test_refresh_after_target_change(self):
        target = make_target([10])
        state = P2SMState([5, 15], target)
        target.insert_sorted(12)
        state.refresh()
        state.merge()
        assert target.to_list() == [5, 10, 12, 15]
        assert target.is_sorted()

    def test_incremental_add_matches_fresh_build(self):
        target = make_target([10, 20])
        incremental = P2SMState([5], target)
        incremental.add_to_a(15)
        fresh = P2SMState([5, 15], target)
        assert sorted(incremental.pos_a) == sorted(fresh.pos_a)
        for key in fresh.pos_a:
            assert incremental.pos_a[key].values() == fresh.pos_a[key].values()


class TestReferenceMerge:
    def test_reference_merge_sorted(self):
        target = make_target([2, 4])
        steps = sorted_merge_reference(target, [1, 3, 5])
        assert target.to_list() == [1, 2, 3, 4, 5]
        assert steps >= 0

    def test_reference_merge_counts_scans(self):
        target = make_target(list(range(10)))
        steps = sorted_merge_reference(target, [100])
        assert steps == 10  # scanned past all existing elements


class TestMergeEquivalenceProperty:
    @given(
        st.lists(st.integers(0, 100), max_size=30),
        st.lists(st.integers(0, 100), max_size=30),
    )
    @settings(max_examples=80)
    def test_p2sm_equals_reference_sorted_merge(self, b_values, a_values):
        """The paper's central correctness claim: P2SM's spliced result
        is exactly the sequential sorted merge's result."""
        p2sm_target = make_target(b_values)
        state = P2SMState(list(a_values), p2sm_target)
        state.merge()

        reference_target = make_target(b_values)
        sorted_merge_reference(reference_target, list(a_values))

        assert p2sm_target.to_list() == reference_target.to_list()
        assert p2sm_target.to_list() == sorted(b_values + a_values)
        assert p2sm_target.is_sorted()
        assert p2sm_target.check_size()

    @given(
        st.lists(st.integers(0, 50), max_size=20),
        st.lists(st.integers(0, 50), min_size=1, max_size=20),
    )
    @settings(max_examples=50)
    def test_merge_is_o1_pointer_writes(self, b_values, a_values):
        """Pointer writes are bounded by 2 * distinct positions, never
        by the list sizes."""
        target = make_target(b_values)
        state = P2SMState(list(a_values), target)
        positions = len(state.pos_a)
        report = state.merge()
        assert report.pointer_writes == 2 * positions
        assert positions <= min(len(a_values), len(b_values) + 1)

    @given(st.lists(st.integers(0, 40), max_size=25), st.integers(0, 40))
    @settings(max_examples=50)
    def test_incremental_add_equivalent_to_rebuild(self, a_values, extra):
        target = make_target([10, 20, 30])
        incremental = P2SMState(list(a_values), target)
        incremental.add_to_a(extra)
        fresh = P2SMState(sorted(a_values + [extra]), target)
        assert incremental.values_a == fresh.values_a
        assert sorted(incremental.pos_a) == sorted(fresh.pos_a)


class TestMemoryModel:
    def test_memory_scales_with_structures(self):
        small = P2SMState([1], make_target([1]))
        large = P2SMState(list(range(50)), make_target(list(range(50, 100))))
        assert large.memory_bytes > small.memory_bytes

    def test_memory_zero_after_merge_consumes_chains(self):
        target = make_target([10])
        state = P2SMState([1, 2], target)
        before = state.memory_bytes
        state.merge()
        assert state.memory_bytes < before
