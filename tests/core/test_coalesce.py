"""Load-update coalescing: the fused update equals n-fold application."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalesce import AffineUpdate, CoalescedUpdate, apply_n_times


class TestAffineUpdate:
    def test_apply(self):
        update = AffineUpdate(alpha=0.5, beta=10.0)
        assert update.apply(100.0) == 60.0

    def test_apply_n_times_zero_is_identity(self):
        update = AffineUpdate(alpha=0.9, beta=1.0)
        assert apply_n_times(update, 42.0, 0) == 42.0

    def test_apply_n_times_negative_rejected(self):
        with pytest.raises(ValueError):
            apply_n_times(AffineUpdate(0.5, 1.0), 1.0, -1)

    def test_compose_n_returns_coalesced(self):
        fused = AffineUpdate(0.5, 1.0).compose_n(3)
        assert isinstance(fused, CoalescedUpdate)
        assert fused.n == 3


class TestCoalescedUpdate:
    def test_n1_equals_single_application(self):
        update = AffineUpdate(alpha=0.97, beta=22.0)
        fused = CoalescedUpdate.precompute(0.97, 22.0, 1)
        assert fused.apply(500.0) == pytest.approx(update.apply(500.0))

    def test_n_below_one_rejected(self):
        with pytest.raises(ValueError):
            CoalescedUpdate.precompute(0.9, 1.0, 0)

    def test_explicit_small_case(self):
        # f(x) = 0.5x + 8, applied twice to 100: f(100)=58, f(58)=37.
        fused = CoalescedUpdate.precompute(0.5, 8.0, 2)
        assert fused.apply(100.0) == pytest.approx(37.0)

    def test_alpha_one_degenerate_series(self):
        # f(x) = x + 5 applied 4 times adds 20.
        fused = CoalescedUpdate.precompute(1.0, 5.0, 4)
        assert fused.apply(3.0) == pytest.approx(23.0)

    def test_precomputed_fields(self):
        fused = CoalescedUpdate.precompute(0.5, 8.0, 3)
        assert fused.alpha_n == pytest.approx(0.125)
        # beta * (1 - a^3) / (1 - a) = 8 * 0.875 / 0.5 = 14
        assert fused.beta_sum == pytest.approx(14.0)

    def test_pelt_shaped_parameters(self):
        """The actual PELT constants from the load tracker."""
        alpha = 0.5 ** (1.0 / 32.0)
        beta = 1024.0 * (1.0 - alpha)
        update = AffineUpdate(alpha, beta)
        fused = CoalescedUpdate.precompute(alpha, beta, 36)
        assert fused.apply(777.0) == pytest.approx(
            apply_n_times(update, 777.0, 36), rel=1e-12
        )


class TestEquivalenceProperty:
    @given(
        alpha=st.floats(min_value=0.01, max_value=1.5, allow_nan=False),
        beta=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        x=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        n=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200)
    def test_coalesced_equals_iterated(self, alpha, beta, x, n):
        """Paper §4.2: alpha^n x + beta (1-alpha^n)/(1-alpha) is exactly
        f applied n times (we implement the corrected exponent; the
        paper's printed n-1 is a typo against its own derivation)."""
        update = AffineUpdate(alpha, beta)
        fused = CoalescedUpdate.precompute(alpha, beta, n)
        expected = apply_n_times(update, x, n)
        got = fused.apply(x)
        assert math.isclose(got, expected, rel_tol=1e-9, abs_tol=1e-6)

    @given(
        n=st.integers(min_value=1, max_value=128),
        x=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_paper_formula_with_n_minus_1_disagrees(self, n, x):
        """Documents the paper's typo: using alpha^(n-1) in the beta
        term does NOT reproduce n-fold application (except trivially)."""
        alpha, beta = 0.9, 7.0
        update = AffineUpdate(alpha, beta)
        expected = apply_n_times(update, x, n)
        typo_beta_sum = beta * (1 - alpha ** (n - 1)) / (1 - alpha)
        typo_value = (alpha ** n) * x + typo_beta_sum
        correct = CoalescedUpdate.precompute(alpha, beta, n).apply(x)
        assert math.isclose(correct, expected, rel_tol=1e-9, abs_tol=1e-6)
        # the typo'd formula is off by beta * alpha^(n-1)
        assert math.isclose(
            expected - typo_value, beta * alpha ** (n - 1), rel_tol=1e-6
        )
