"""HorsePauseResume: the fast path's behavior and cost structure."""

import pytest

from repro.core.hot_resume import HorseConfig, HorsePauseResume
from repro.hypervisor.pause_resume import STEP_LOAD, STEP_MERGE
from repro.hypervisor.platform import firecracker_platform
from repro.hypervisor.sandbox import Sandbox, SandboxState
from repro.hypervisor.vcpu import VcpuState


def make_fixture(config=HorseConfig.full(), vcpus=4):
    virt = firecracker_platform()
    horse = HorsePauseResume(virt.host, virt.policy, virt.costs, config=config)
    sandbox = Sandbox(vcpus=vcpus, memory_mb=512, is_ull=True)
    virt.vanilla.place_initial(sandbox, 0)
    return virt, horse, sandbox


class TestConfig:
    def test_full_enables_everything(self):
        config = HorseConfig.full()
        assert config.enable_p2sm and config.enable_coalescing
        assert config.fast_command_path

    def test_ppsm_only(self):
        config = HorseConfig.ppsm_only()
        assert config.enable_p2sm and not config.enable_coalescing
        assert not config.fast_command_path

    def test_coalescing_only(self):
        config = HorseConfig.coalescing_only()
        assert not config.enable_p2sm and config.enable_coalescing


class TestPause:
    def test_pause_builds_merge_vcpus_sorted(self):
        virt, horse, sandbox = make_fixture()
        horse.pause(sandbox, 0)
        assert sandbox.merge_vcpus is not None
        keys = [virt.policy.sort_key(v) for v in sandbox.merge_vcpus]
        assert keys == sorted(keys)

    def test_pause_assigns_ull_runqueue(self):
        _, horse, sandbox = make_fixture()
        horse.pause(sandbox, 0)
        assert sandbox.assigned_ull_runqueue in horse.ull.queue_ids

    def test_pause_builds_p2sm_state(self):
        _, horse, sandbox = make_fixture()
        horse.pause(sandbox, 0)
        assert sandbox.p2sm_state is not None
        assert len(sandbox.p2sm_state.values_a) == sandbox.vcpu_count

    def test_pause_precomputes_coalesced_update(self):
        _, horse, sandbox = make_fixture(vcpus=5)
        horse.pause(sandbox, 0)
        assert sandbox.coalesced_update is not None
        assert sandbox.coalesced_update.n == 5

    def test_pause_dequeues_all_vcpus(self):
        virt, horse, sandbox = make_fixture()
        horse.pause(sandbox, 0)
        assert all(v.state is VcpuState.PAUSED for v in sandbox.vcpus)
        assert all(len(rq) == 0 for rq in virt.host.runqueues.values())

    def test_pause_from_paused_rejected(self):
        _, horse, sandbox = make_fixture()
        horse.pause(sandbox, 0)
        with pytest.raises(Exception):
            horse.pause(sandbox, 0)

    def test_coalescing_only_skips_p2sm_state(self):
        _, horse, sandbox = make_fixture(config=HorseConfig.coalescing_only())
        horse.pause(sandbox, 0)
        assert sandbox.p2sm_state is None
        assert sandbox.coalesced_update is not None

    def test_pause_reports_memory_footprint(self):
        virt, horse, sandbox = make_fixture(vcpus=36)
        result = horse.pause(sandbox, 0)
        assert result.precompute_bytes == virt.costs.horse_memory_bytes(36)


class TestResume:
    def test_resume_places_vcpus_on_ull_queue(self):
        _, horse, sandbox = make_fixture()
        horse.pause(sandbox, 0)
        queue_id = sandbox.assigned_ull_runqueue
        result = horse.resume(sandbox, 0)
        assert result.runqueue_ids == [queue_id]
        queue = horse.ull.queue(queue_id)
        assert len(queue) == sandbox.vcpu_count
        queue.check_invariants()

    def test_resume_sets_running_state(self):
        _, horse, sandbox = make_fixture()
        horse.pause(sandbox, 0)
        horse.resume(sandbox, 0)
        assert sandbox.state is SandboxState.RUNNING
        assert all(v.state is VcpuState.RUNNABLE for v in sandbox.vcpus)

    def test_resume_clears_artifacts(self):
        _, horse, sandbox = make_fixture()
        horse.pause(sandbox, 0)
        horse.resume(sandbox, 0)
        assert sandbox.merge_vcpus is None
        assert sandbox.p2sm_state is None
        assert sandbox.coalesced_update is None
        assert sandbox.assigned_ull_runqueue is None

    def test_resume_without_pause_rejected(self):
        _, horse, sandbox = make_fixture()
        with pytest.raises(Exception):
            horse.resume(sandbox, 0)

    def test_resume_updates_queue_load_once_coalesced(self):
        _, horse, sandbox = make_fixture(vcpus=8)
        horse.pause(sandbox, 0)
        queue = horse.ull.queue(sandbox.assigned_ull_runqueue)
        before = queue.load.updates_applied
        horse.resume(sandbox, 0)
        assert queue.load.updates_applied == before + 1

    def test_resume_per_vcpu_loads_without_coalescing(self):
        _, horse, sandbox = make_fixture(
            config=HorseConfig.ppsm_only(), vcpus=8
        )
        horse.pause(sandbox, 0)
        queue = horse.ull.queue(sandbox.assigned_ull_runqueue)
        before = queue.load.updates_applied
        horse.resume(sandbox, 0)
        assert queue.load.updates_applied == before + 8

    def test_coalesced_load_equals_iterated_load(self):
        """The fused update must leave the same load value the vanilla
        per-vCPU folds would have."""
        _, horse_coal, sandbox_coal = make_fixture(vcpus=12)
        horse_coal.pause(sandbox_coal, 0)
        horse_coal.resume(sandbox_coal, 0)
        queue_coal = horse_coal.ull.queue_ids[0]
        load_coal = horse_coal.ull.queue(queue_coal).load.value

        _, horse_iter, sandbox_iter = make_fixture(
            config=HorseConfig.ppsm_only(), vcpus=12
        )
        horse_iter.pause(sandbox_iter, 0)
        horse_iter.resume(sandbox_iter, 0)
        queue_iter = horse_iter.ull.queue_ids[0]
        load_iter = horse_iter.ull.queue(queue_iter).load.value

        assert load_coal == pytest.approx(load_iter, rel=1e-9)


class TestCostShape:
    def test_full_horse_flat_in_vcpus(self):
        """The headline O(1): resume cost identical for 1 and 36 vCPUs."""
        totals = []
        for vcpus in (1, 8, 36):
            _, horse, sandbox = make_fixture(vcpus=vcpus)
            horse.pause(sandbox, 0)
            totals.append(horse.resume(sandbox, 0).total_ns)
        assert totals[0] == totals[1] == totals[2]

    def test_full_horse_is_about_150ns(self):
        _, horse, sandbox = make_fixture()
        horse.pause(sandbox, 0)
        total = horse.resume(sandbox, 0).total_ns
        assert 100 <= total <= 200

    def test_ppsm_merge_step_constant(self):
        merge_costs = []
        for vcpus in (1, 36):
            _, horse, sandbox = make_fixture(
                config=HorseConfig.ppsm_only(), vcpus=vcpus
            )
            horse.pause(sandbox, 0)
            result = horse.resume(sandbox, 0)
            merge_costs.append(result.breakdown.phases[STEP_MERGE])
        assert merge_costs[0] == merge_costs[1]

    def test_coalesced_load_step_constant(self):
        load_costs = []
        for vcpus in (1, 36):
            _, horse, sandbox = make_fixture(
                config=HorseConfig.coalescing_only(), vcpus=vcpus
            )
            horse.pause(sandbox, 0)
            result = horse.resume(sandbox, 0)
            load_costs.append(result.breakdown.phases[STEP_LOAD])
        assert load_costs[0] == load_costs[1]

    def test_merge_threads_reported(self):
        _, horse, sandbox = make_fixture()
        horse.pause(sandbox, 0)
        result = horse.resume(sandbox, 0)
        assert result.merge_threads >= 1
        assert result.pointer_writes == 2 * result.merge_threads


class TestMixedPathLifecycles:
    def test_vanilla_resume_then_horse_pause_again(self):
        """Regression: a HORSE-paused sandbox resumed through the
        *vanilla* path keeps a stale ull_runqueue assignment; the next
        HORSE pause must detach it instead of double-assigning."""
        virt = firecracker_platform()
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        sandbox = Sandbox(vcpus=2, memory_mb=256, is_ull=True)
        virt.vanilla.place_initial(sandbox, 0)
        horse.pause(sandbox, 0)
        virt.vanilla.resume(sandbox, 0)  # slow-path resume
        horse.pause(sandbox, 0)          # must not raise
        result = horse.resume(sandbox, 0)
        assert result.total_ns < 200
        # exactly one live assignment throughout
        assert sum(horse.ull.assignment_counts().values()) == 0

    def test_vanilla_resume_after_horse_pause_places_on_general_queues(self):
        virt = firecracker_platform()
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        sandbox = Sandbox(vcpus=3, memory_mb=256, is_ull=True)
        virt.vanilla.place_initial(sandbox, 0)
        horse.pause(sandbox, 0)
        result = virt.vanilla.resume(sandbox, 0)
        ull_ids = {q.runqueue_id for q in virt.host.ull_runqueues()}
        assert not set(result.runqueue_ids) & ull_ids


class TestMultiSandboxInteraction:
    def test_pause_refreshes_other_sandboxes_precompute(self):
        """Regression: pausing a sandbox dequeues its vCPUs from the
        ull_runqueue; other paused sandboxes' arrayB must be rebuilt or
        their later merge splices after detached nodes (size drift)."""
        virt = firecracker_platform()
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        first = Sandbox(vcpus=2, memory_mb=256, is_ull=True)
        second = Sandbox(vcpus=2, memory_mb=256, is_ull=True)
        for sandbox in (first, second):
            virt.vanilla.place_initial(sandbox, 0)
            horse.pause(sandbox, 0)
        # first resumes onto the queue, then pauses again (dequeue!)
        horse.resume(first, 0)
        horse.pause(first, 0)
        # second's precompute must reflect the now-empty queue
        horse.resume(second, 0)
        queue = horse.ull.queue(horse.ull.queue_ids[0])
        assert len(queue) == 2
        queue.check_invariants()

    def test_second_sandbox_precompute_sees_first_resume(self):
        """Pausing two sandboxes against the same queue, then resuming
        one, must leave the other's precomputation consistent so its own
        resume still produces a sorted queue."""
        virt = firecracker_platform()
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        first = Sandbox(vcpus=3, memory_mb=256, is_ull=True)
        second = Sandbox(vcpus=3, memory_mb=256, is_ull=True)
        for sandbox in (first, second):
            virt.vanilla.place_initial(sandbox, 0)
            horse.pause(sandbox, 0)
        horse.resume(first, 0)
        horse.resume(second, 0)
        queue = horse.ull.queue(horse.ull.queue_ids[0])
        assert len(queue) == 6
        queue.check_invariants()
