"""UllRunqueueManager: reservation, balancing, precompute freshness."""

import pytest

from repro.core.p2sm import P2SMState
from repro.core.ull_runqueue import UllAssignmentError, UllRunqueueManager
from repro.hypervisor.cpu import Host, HostSpec
from repro.hypervisor.sandbox import Sandbox
from repro.sim.units import microseconds, milliseconds


def make_host(reserved=2, cores=8):
    spec = HostSpec(
        name="test",
        sockets=1,
        cores_per_socket=cores,
        base_khz=2_000_000,
        max_khz=3_000_000,
        memory_mb=64 * 1024,
    )
    return Host(
        spec=spec,
        sort_key=lambda v: v.vruntime,
        default_timeslice_ns=milliseconds(5),
        ull_timeslice_ns=microseconds(1),
        reserved_ull_cores=reserved,
    )


class TestReservation:
    def test_reserved_queue_count(self):
        manager = UllRunqueueManager(make_host(reserved=2))
        assert len(manager.queue_ids) == 2

    def test_no_reserved_queues_rejected(self):
        with pytest.raises(UllAssignmentError):
            UllRunqueueManager(make_host(reserved=0))

    def test_reserved_queues_have_1us_timeslice(self):
        manager = UllRunqueueManager(make_host())
        for qid in manager.queue_ids:
            assert manager.queue(qid).timeslice_ns == microseconds(1)
            assert manager.queue(qid).reserved_for_ull

    def test_queue_lookup_rejects_general_queue(self):
        host = make_host()
        manager = UllRunqueueManager(host)
        general = host.general_runqueues()[0]
        with pytest.raises(UllAssignmentError):
            manager.queue(general.runqueue_id)


class TestAssignment:
    def test_assign_sets_sandbox_attribute(self):
        manager = UllRunqueueManager(make_host())
        sandbox = Sandbox(vcpus=1, memory_mb=128, is_ull=True)
        queue = manager.assign(sandbox)
        assert sandbox.assigned_ull_runqueue == queue.runqueue_id

    def test_double_assign_rejected(self):
        manager = UllRunqueueManager(make_host())
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        manager.assign(sandbox)
        with pytest.raises(UllAssignmentError):
            manager.assign(sandbox)

    def test_balancing_spreads_by_assignment_count(self):
        """Paper §4.1.3: queue choice considers the number of paused
        sandboxes already associated with each ull_runqueue."""
        manager = UllRunqueueManager(make_host(reserved=2))
        boxes = [Sandbox(vcpus=1, memory_mb=128) for _ in range(4)]
        for box in boxes:
            manager.assign(box)
        counts = manager.assignment_counts()
        assert sorted(counts.values()) == [2, 2]

    def test_unassign_rebalances(self):
        manager = UllRunqueueManager(make_host(reserved=2))
        first = Sandbox(vcpus=1, memory_mb=128)
        manager.assign(first)
        manager.unassign(first)
        assert first.assigned_ull_runqueue is None
        assert sum(manager.assignment_counts().values()) == 0

    def test_unassign_unassigned_is_noop(self):
        manager = UllRunqueueManager(make_host())
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        manager.unassign(sandbox)  # must not raise

    def test_assigned_to_lists_sandboxes(self):
        manager = UllRunqueueManager(make_host(reserved=1))
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        queue = manager.assign(sandbox)
        assert manager.assigned_to(queue.runqueue_id) == [sandbox]


class TestPrecomputeFreshness:
    def test_on_queue_updated_refreshes_states(self):
        host = make_host(reserved=1)
        manager = UllRunqueueManager(host)
        queue = manager.queue(manager.queue_ids[0])
        sandbox = Sandbox(vcpus=2, memory_mb=128)
        manager.assign(sandbox)
        sandbox.p2sm_state = P2SMState(list(sandbox.vcpus), queue.entities)

        # Mutate the queue: the tied sandbox's arrayB must be rebuilt.
        other = Sandbox(vcpus=1, memory_mb=128)
        queue.entities.insert_sorted(other.vcpus[0])
        entries = manager.on_queue_updated(queue.runqueue_id)
        assert entries > 0
        assert manager.refresh_operations == 1
        # arrayB now mirrors the grown queue (sentinel + 1 element).
        assert len(sandbox.p2sm_state.array_b) == 2

    def test_refresh_skips_sandboxes_without_state(self):
        manager = UllRunqueueManager(make_host(reserved=1))
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        queue = manager.assign(sandbox)
        assert manager.on_queue_updated(queue.runqueue_id) == 0

    def test_total_precompute_bytes(self):
        host = make_host(reserved=1)
        manager = UllRunqueueManager(host)
        queue = manager.queue(manager.queue_ids[0])
        sandbox = Sandbox(vcpus=4, memory_mb=128)
        manager.assign(sandbox)
        assert manager.total_precompute_bytes() == 0
        sandbox.p2sm_state = P2SMState(list(sandbox.vcpus), queue.entities)
        assert manager.total_precompute_bytes() > 0
