"""SortedLinkedList: sorted inserts, removal, positions, splicing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linked_list import ListNode, SortedLinkedList


def make_list(values=()):
    lst = SortedLinkedList(key=lambda v: v)
    for value in values:
        lst.insert_sorted(value)
    return lst


class TestBasics:
    def test_empty_list(self):
        lst = make_list()
        assert len(lst) == 0
        assert not lst
        assert lst.first() is None
        assert lst.to_list() == []

    def test_single_insert(self):
        lst = make_list([5])
        assert lst.to_list() == [5]
        assert lst.first() == 5

    def test_inserts_keep_sorted_order(self):
        lst = make_list([3, 1, 2])
        assert lst.to_list() == [1, 2, 3]

    def test_duplicate_keys_fifo(self):
        lst = SortedLinkedList(key=lambda pair: pair[0])
        lst.insert_sorted((1, "first"))
        lst.insert_sorted((1, "second"))
        assert [tag for _, tag in lst] == ["first", "second"]

    def test_len_tracks_inserts(self):
        lst = make_list(range(10))
        assert len(lst) == 10

    def test_iteration_yields_values(self):
        assert list(make_list([2, 1])) == [1, 2]

    def test_pop_first_returns_smallest(self):
        lst = make_list([3, 1, 2])
        assert lst.pop_first() == 1
        assert lst.to_list() == [2, 3]

    def test_pop_first_empty_returns_none(self):
        assert make_list().pop_first() is None


class TestRemove:
    def test_remove_existing(self):
        lst = make_list([1, 2, 3])
        assert lst.remove(2) is True
        assert lst.to_list() == [1, 3]
        assert len(lst) == 2

    def test_remove_missing_returns_false(self):
        lst = make_list([1])
        assert lst.remove(9) is False
        assert len(lst) == 1

    def test_remove_by_identity(self):
        class Box:
            def __init__(self, v):
                self.v = v

        lst = SortedLinkedList(key=lambda b: b.v)
        a, b = Box(1), Box(1)
        lst.insert_sorted(a)
        lst.insert_sorted(b)
        assert lst.remove(b) is True
        assert lst.to_list() == [a] or lst.to_list()[0] is a

    def test_remove_head_and_tail(self):
        lst = make_list([1, 2, 3])
        lst.remove(1)
        lst.remove(3)
        assert lst.to_list() == [2]


class TestPositions:
    def test_node_at_zero_is_sentinel(self):
        lst = make_list([1, 2])
        assert lst.node_at(0) is lst.head

    def test_node_at_returns_elements(self):
        lst = make_list([10, 20, 30])
        assert lst.node_at(1).value == 10
        assert lst.node_at(3).value == 30

    def test_node_at_out_of_range(self):
        lst = make_list([1])
        with pytest.raises(IndexError):
            lst.node_at(2)
        with pytest.raises(IndexError):
            lst.node_at(-1)

    def test_position_for_key_before_all(self):
        assert make_list([10, 20]).position_for_key(5) == 0

    def test_position_for_key_between(self):
        assert make_list([10, 20]).position_for_key(15) == 1

    def test_position_for_key_after_all(self):
        assert make_list([10, 20]).position_for_key(25) == 2

    def test_position_for_equal_key_goes_after(self):
        assert make_list([10, 20]).position_for_key(10) == 1


class TestSplice:
    def test_splice_into_empty_list(self):
        lst = make_list()
        head = ListNode(1)
        tail = ListNode(2)
        head.next = tail
        lst.splice_after(lst.head, head, tail, 2)
        assert lst.to_list() == [1, 2]
        assert len(lst) == 2

    def test_splice_in_middle_preserves_order(self):
        lst = make_list([1, 4])
        head = ListNode(2)
        tail = ListNode(3)
        head.next = tail
        anchor = lst.node_at(1)  # node holding 1
        lst.splice_after(anchor, head, tail, 2)
        assert lst.to_list() == [1, 2, 3, 4]
        assert lst.is_sorted()

    def test_splice_single_node(self):
        lst = make_list([1, 3])
        node = ListNode(2)
        lst.splice_after(lst.node_at(1), node, node, 1)
        assert lst.to_list() == [1, 2, 3]

    def test_splice_zero_length_rejected(self):
        lst = make_list([1])
        node = ListNode(2)
        with pytest.raises(ValueError):
            lst.splice_after(lst.head, node, node, 0)

    def test_splice_does_not_count_scan_steps(self):
        lst = make_list([1, 2, 3])
        lst.reset_scan_counter()
        node = ListNode(0)
        lst.splice_after(lst.head, node, node, 1)
        assert lst.scan_steps == 0


class TestScanAccounting:
    def test_insert_into_empty_costs_zero_scans(self):
        lst = make_list()
        lst.insert_sorted(1)
        assert lst.scan_steps == 0

    def test_insert_at_end_scans_whole_list(self):
        lst = make_list([1, 2, 3])
        lst.reset_scan_counter()
        lst.insert_sorted(10)
        assert lst.scan_steps == 3

    def test_insert_at_front_costs_zero_scans(self):
        lst = make_list([5, 6])
        lst.reset_scan_counter()
        lst.insert_sorted(1)
        assert lst.scan_steps == 0

    def test_reset_returns_previous_count(self):
        lst = make_list([1, 2, 3])
        steps = lst.scan_steps
        assert lst.reset_scan_counter() == steps
        assert lst.scan_steps == 0


class TestInvariantsProperty:
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=60))
    @settings(max_examples=60)
    def test_always_sorted_and_sized(self, values):
        lst = make_list(values)
        assert lst.is_sorted()
        assert lst.check_size()
        assert lst.to_list() == sorted(values)

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=40),
        st.data(),
    )
    @settings(max_examples=40)
    def test_remove_preserves_invariants(self, values, data):
        lst = make_list(values)
        victim = data.draw(st.sampled_from(values))
        assert lst.remove(victim)
        expected = sorted(values)
        expected.remove(victim)
        assert lst.to_list() == expected
        assert lst.is_sorted()
        assert lst.check_size()

    @given(st.lists(st.integers(0, 50), max_size=30), st.integers(0, 50))
    @settings(max_examples=40)
    def test_position_for_key_matches_bisect(self, values, probe):
        import bisect

        lst = make_list(values)
        assert lst.position_for_key(probe) == bisect.bisect_right(sorted(values), probe)
