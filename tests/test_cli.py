"""CLI surface: commands parse, run, and print sane output."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_report_flags(self):
        args = build_parser().parse_args(["report", "--fast", "--seed", "3"])
        assert args.fast and args.seed == 3

    def test_experiment_name(self):
        args = build_parser().parse_args(["experiment", "figure3"])
        assert args.name == "figure3"


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiment", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_demo_shows_four_paths(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        for start in ("cold", "restore", "warm", "horse"):
            assert start in out

    @pytest.mark.parametrize("name", ["table1", "figure1", "figure2", "figure3"])
    def test_experiment_commands_run_fast(self, capsys, name):
        assert main(["experiment", name, "--fast"]) == 0
        out = capsys.readouterr().out
        assert EXPERIMENTS[name].split(" — ")[0] in out

    def test_overhead_command(self, capsys):
        assert main(["experiment", "overhead", "--fast"]) == 0
        assert "mem delta" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["report", "--fast", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert "# HORSE reproduction" in text
        assert "Figure 3" in text
