"""CLI surface: commands parse, run, and print sane output."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_report_flags(self):
        args = build_parser().parse_args(["report", "--fast", "--seed", "3"])
        assert args.fast and args.seed == 3

    def test_experiment_name(self):
        args = build_parser().parse_args(["experiment", "figure3"])
        assert args.name == "figure3"

    def test_trace_flags(self):
        args = build_parser().parse_args(
            ["trace", "figure2", "--fast", "--out-dir", "/tmp/t"]
        )
        assert args.name == "figure2"
        assert args.fast and args.out_dir == "/tmp/t"


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiment", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_demo_shows_four_paths(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        for start in ("cold", "restore", "warm", "horse"):
            assert start in out

    @pytest.mark.parametrize("name", ["table1", "figure1", "figure2", "figure3"])
    def test_experiment_commands_run_fast(self, capsys, name):
        assert main(["experiment", name, "--fast"]) == 0
        out = capsys.readouterr().out
        assert EXPERIMENTS[name].split(" — ")[0] in out

    def test_overhead_command(self, capsys):
        assert main(["experiment", "overhead", "--fast"]) == 0
        assert "mem delta" in capsys.readouterr().out

    def test_trace_unknown_experiment_fails(self, capsys):
        assert main(["trace", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trace_exports_chrome_json_and_jsonl(self, tmp_path, capsys):
        import json

        from repro.obs import read_jsonl, to_chrome_trace

        out_dir = tmp_path / "traces"
        assert main(
            ["trace", "figure2", "--fast", "--out-dir", str(out_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "== metrics" in out
        assert "resume.total_ns" in out

        chrome_path = out_dir / "figure2.trace.json"
        jsonl_path = out_dir / "figure2.trace.jsonl"
        chrome = json.loads(chrome_path.read_text())
        events = chrome["traceEvents"]
        assert any(e.get("ph") == "X" and e["name"] == "resume"
                   for e in events)
        assert any(e.get("ph") == "X" and e["name"] == "merge"
                   for e in events)
        # the JSONL form round-trips to the identical Chrome export
        assert to_chrome_trace(read_jsonl(str(jsonl_path))) == chrome

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["report", "--fast", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert "# HORSE reproduction" in text
        assert "Figure 3" in text
