"""The chaos experiment: soundness, breaker win, CLI determinism.

The determinism check deliberately shells out: sandbox/invocation ids
are process-global counters, so only two *fresh processes* with the
same seed are comparable byte-for-byte.
"""

import os
import subprocess
import sys

import pytest

from repro.experiments.chaos import (
    CHAOS_MODES,
    ChaosConfig,
    render_chaos,
    run_chaos,
    run_chaos_mode,
)
from repro.resilience import FAILURE_KINDS

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def cli_chaos(*extra):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", "chaos", *extra],
        capture_output=True, env=env, text=True,
    )


class TestModes:
    @pytest.mark.parametrize("mode", CHAOS_MODES)
    def test_mode_is_sound(self, mode):
        outcome = run_chaos_mode(mode, ChaosConfig(requests=200, seed=1))
        assert outcome.ok, outcome.violations
        assert outcome.completed + outcome.shed + outcome.failed == (
            outcome.submitted
        )

    def test_breaker_beats_retries_only_at_tail(self):
        # The acceptance criterion: under the default seeded failure
        # profile, steering placement off flaky hosts measurably cuts
        # the uLL p99 versus the same stack with breakers disabled.
        breaker = run_chaos_mode("breaker", ChaosConfig(seed=0))
        retries = run_chaos_mode("retries-only", ChaosConfig(seed=0))
        assert breaker.ok and retries.ok
        assert breaker.ull_p99_us < retries.ull_p99_us

    def test_all_failure_kinds_fire_in_study(self):
        # Non-vacuity at the experiment level: the default profile
        # actually exercises every failure domain.
        outcome = run_chaos_mode("breaker", ChaosConfig(seed=0))
        for kind in FAILURE_KINDS:
            assert outcome.fired[kind] > 0, f"{kind} never fired"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(hosts=0)
        with pytest.raises(ValueError):
            ChaosConfig(failure_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(requests=0)


class TestRender:
    def test_table_lists_every_mode(self):
        result = run_chaos(ChaosConfig(requests=150, seed=2))
        table = render_chaos(result)
        for mode in CHAOS_MODES:
            assert mode in table
        assert "uLL p99 us" in table


class TestCli:
    def test_same_seed_runs_byte_identical(self):
        flags = ("cluster", "--seed", "3", "--failure-rate", "0.2",
                 "--requests", "300")
        first = cli_chaos(*flags)
        second = cli_chaos(*flags)
        assert first.returncode == 0, first.stderr
        assert first.stdout == second.stdout
        assert first.stdout.strip()

    def test_unknown_experiment_exits_2(self):
        result = cli_chaos("bogus")
        assert result.returncode == 2

    def test_bad_failure_rate_exits_2(self):
        result = cli_chaos("cluster", "--failure-rate", "2.0")
        assert result.returncode == 2
