"""Failure domains: injector determinism, crash scheduling, fault hooks.

Includes the non-vacuity guard: every kind in ``FAILURE_KINDS`` must
demonstrably fire under a configuration that selects it — a failure
model that never fails validates nothing.
"""

import pytest

from repro.faas import FunctionSpec, StartType
from repro.faas.cluster import FaaSCluster
from repro.hypervisor.pause_resume import (
    RESUME_FAULT_HUNG,
    RESUME_FAULT_SLOW,
    RESUME_FAULT_TRANSIENT,
    HungResumeError,
    ResumeFault,
    TransientResumeError,
)
from repro.hypervisor.sandbox import SandboxState
from repro.resilience.failures import (
    FAILURE_KINDS,
    FailureConfig,
    FailureInjector,
)
from repro.sim.units import seconds
from repro.workloads import FirewallWorkload


def make_cluster(hosts=2, seed=3):
    cluster = FaaSCluster(hosts=hosts, seed=seed)
    cluster.register(FunctionSpec("fw", FirewallWorkload()))
    cluster.provision_warm("fw", per_host=2)
    return cluster


def isolating_config(kind, failure_rate=0.5):
    """A config under which only *kind* can fire (non-vacuity per kind)."""
    weights = {
        "transient_weight": 1.0 if kind == RESUME_FAULT_TRANSIENT else 0.0,
        "slow_weight": 1.0 if kind == RESUME_FAULT_SLOW else 0.0,
        "hung_weight": 1.0 if kind == RESUME_FAULT_HUNG else 0.0,
    }
    if kind == "node_crash":
        weights = {
            "transient_weight": 1.0, "slow_weight": 0.0, "hung_weight": 0.0
        }
    return FailureConfig(
        failure_rate=failure_rate,
        flaky_fraction=1.0,   # every host faults: kinds must fire fast
        flaky_bias=1.8,       # 0.5 * 1.8 = 0.9, the probability cap
        crash_mtbf_base_s=0.05,
        **weights,
    )


class TestConfig:
    def test_rate_range_enforced(self):
        with pytest.raises(ValueError):
            FailureConfig(failure_rate=1.0)
        with pytest.raises(ValueError):
            FailureConfig(failure_rate=-0.1)

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            FailureConfig(transient_weight=0, slow_weight=0, hung_weight=0)

    def test_probability_scales_with_flakiness(self):
        config = FailureConfig(failure_rate=0.1)
        assert config.resume_fault_probability(True) == pytest.approx(0.6)
        assert config.resume_fault_probability(False) == pytest.approx(0.02)

    def test_probability_capped(self):
        config = FailureConfig(failure_rate=0.5, flaky_bias=10.0)
        assert config.resume_fault_probability(True) == 0.9

    def test_zero_rate_means_no_crashes(self):
        assert FailureConfig(failure_rate=0.0).mean_uptime_ns() is None


class TestFlakySelection:
    def test_at_least_one_flaky_host(self):
        cluster = make_cluster(hosts=4)
        injector = FailureInjector(
            cluster, FailureConfig(failure_rate=0.1, flaky_fraction=0.01),
            seed=0,
        )
        assert len(injector.flaky_hosts) == 1

    def test_no_flaky_hosts_at_zero_rate(self):
        cluster = make_cluster()
        injector = FailureInjector(
            cluster, FailureConfig(failure_rate=0.0), seed=0
        )
        assert injector.flaky_hosts == ()

    def test_selection_deterministic(self):
        picks = []
        for _ in range(2):
            injector = FailureInjector(
                make_cluster(hosts=6),
                FailureConfig(failure_rate=0.2, flaky_fraction=0.5),
                seed=9,
            )
            picks.append(injector.flaky_hosts)
        assert picks[0] == picks[1]


class TestNonVacuity:
    """Each failure kind must fire under a config selecting it."""

    @pytest.mark.parametrize("kind", FAILURE_KINDS)
    def test_kind_fires(self, kind):
        cluster = make_cluster(hosts=2, seed=11)
        injector = FailureInjector(cluster, isolating_config(kind), seed=11)
        injector.schedule_crashes(until_ns=seconds(2))

        fired_errors = 0
        for step in range(60):
            when = seconds(0.03) * (step + 1)

            def attempt():
                nonlocal fired_errors
                for index in range(len(cluster.hosts)):
                    if not cluster.health[index].up:
                        continue
                    if cluster.hosts[index].pool.size("fw") == 0:
                        cluster.hosts[index].provision_warm("fw", count=1)
                    try:
                        cluster.trigger_on(index, "fw", StartType.HORSE)
                    except TransientResumeError:
                        fired_errors += 1
                    except HungResumeError as exc:
                        fired_errors += 1
                        cluster.hosts[index].destroy_sandbox(exc.sandbox)

            cluster.engine.schedule_at(when, attempt)
        cluster.engine.run(until=seconds(3))
        assert injector.fired[kind] > 0, f"{kind} never fired"

    def test_all_counters_present(self):
        injector = FailureInjector(
            make_cluster(), FailureConfig(failure_rate=0.1), seed=0
        )
        assert set(injector.fired) == set(FAILURE_KINDS)


class TestCrashRecovery:
    def make_injected(self, seed=5):
        cluster = make_cluster(hosts=3, seed=seed)
        injector = FailureInjector(
            cluster,
            FailureConfig(failure_rate=0.5, crash_mtbf_base_s=0.1),
            seed=seed,
        )
        return cluster, injector

    def test_crash_marks_down_and_drains_pool(self):
        cluster, injector = self.make_injected()
        planned = injector.schedule_crashes(until_ns=seconds(2))
        assert planned > 0
        cluster.engine.run(until=seconds(2))
        assert injector.fired["node_crash"] > 0
        assert cluster.stats.crashes == injector.fired["node_crash"]
        for index, health in enumerate(cluster.health):
            if health.crashes > health.recoveries:
                assert not health.up
                assert cluster.hosts[index].pool.size("fw") == 0

    def test_recovery_follows_crash(self):
        cluster, injector = self.make_injected()
        injector.schedule_crashes(until_ns=seconds(1))
        cluster.engine.run(until=seconds(5))  # drain past all recoveries
        for health in cluster.health:
            assert health.up
            assert health.recoveries == health.crashes

    def test_listeners_notified(self):
        cluster, injector = self.make_injected()
        crashes, recoveries = [], []
        injector.on_crash.append(lambda index, now: crashes.append(index))
        injector.on_recover.append(lambda index, now: recoveries.append(index))
        injector.schedule_crashes(until_ns=seconds(1))
        cluster.engine.run(until=seconds(5))
        assert len(crashes) == injector.fired["node_crash"]
        assert len(recoveries) == len(crashes)

    def test_crash_schedule_deterministic(self):
        schedules = []
        for _ in range(2):
            cluster, injector = self.make_injected(seed=21)
            injector.schedule_crashes(until_ns=seconds(2))
            schedules.append(
                sorted(
                    (event.time, event.label)
                    for event in cluster.engine.pending_events()
                    if event.label and event.label.startswith("node-")
                )
            )
        assert schedules[0] == schedules[1]


class TestResumeFaultHooks:
    def test_transient_leaves_sandbox_retryable(self):
        cluster = make_cluster(hosts=1)
        host = cluster.hosts[0]
        host.horse.fault_hook = lambda sandbox, now: ResumeFault(
            RESUME_FAULT_TRANSIENT
        )
        with pytest.raises(TransientResumeError) as excinfo:
            cluster.trigger_on(0, "fw", StartType.HORSE)
        sandbox = excinfo.value.sandbox
        assert sandbox.state is SandboxState.PAUSED
        # The sandbox is re-poolable and resumes fine once the fault clears.
        host.pool.release("fw", sandbox)
        host.horse.fault_hook = None
        invocation = cluster.trigger_on(0, "fw", StartType.HORSE)
        assert invocation.start_type is StartType.HORSE

    def test_hung_sticks_in_resuming(self):
        cluster = make_cluster(hosts=1)
        host = cluster.hosts[0]
        host.horse.fault_hook = lambda sandbox, now: ResumeFault(
            RESUME_FAULT_HUNG
        )
        with pytest.raises(HungResumeError) as excinfo:
            cluster.trigger_on(0, "fw", StartType.HORSE)
        assert excinfo.value.sandbox.state is SandboxState.RESUMING

    def test_slow_adds_stall_to_init(self):
        cluster = make_cluster(hosts=1)
        host = cluster.hosts[0]
        baseline = cluster.trigger_on(0, "fw", StartType.HORSE)
        host.horse.fault_hook = lambda sandbox, now: ResumeFault(
            RESUME_FAULT_SLOW, stall_ns=50_000
        )
        cluster.engine.run(until=seconds(1))  # let the first re-pool
        stalled = cluster.trigger_on(0, "fw", StartType.HORSE)
        assert (
            stalled.initialization_ns
            >= baseline.initialization_ns + 50_000
        )

    def test_in_flight_not_leaked_on_fault(self):
        cluster = make_cluster(hosts=1)
        host = cluster.hosts[0]
        host.horse.fault_hook = lambda sandbox, now: ResumeFault(
            RESUME_FAULT_TRANSIENT
        )
        with pytest.raises(TransientResumeError):
            cluster.trigger_on(0, "fw", StartType.HORSE)
        assert cluster.in_flight[0] == 0
