"""Determinism battery for the dispatch-policy axis.

Two contracts guard the dispatch refactor:

1. **Differential**: the default ``push-least-loaded`` policy must
   reproduce the *pre-refactor* chaos output byte for byte — pinned by
   goldens captured from the code before placement was routed through
   :class:`DispatchPolicy` (``tests/resilience/golden/``).

2. **Policy-invariant determinism**: for *every* registered policy,
   same seed ⇒ byte-identical merged trace regardless of the worker
   count (shards 1/2/4) — the sharded engine's shard-invariance
   contract extended over the whole policy zoo (property-tested with
   hypothesis over policy × seed).
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.chaos import ChaosConfig, render_chaos, run_chaos
from repro.experiments.sharded_chaos import (
    ShardedChaosConfig,
    run_sharded_chaos,
    trace_jsonl,
)
from repro.resilience.policies import DISPATCH_POLICIES

GOLDEN = Path(__file__).parent / "golden"

#: Fast chaos shape the goldens were captured with (pre-refactor code).
FAST_CHAOS = dict(hosts=2, requests=200, seed=0)
FAST_SHARDED = dict(groups=4, hosts=2, requests=240, seed=0)

#: Reduced shape for the 4-policy × 3-shard-count hypothesis sweep.
BATTERY = dict(groups=4, hosts=2, requests=96)

ALL_POLICIES = tuple(DISPATCH_POLICIES.families())


def _merged_trace(policy: str, seed: int, shards: int) -> str:
    config = ShardedChaosConfig(seed=seed, dispatch=policy, **BATTERY)
    return trace_jsonl(run_sharded_chaos(config, shards=shards, parallel=False))


class TestPushIsByteIdenticalToPreRefactor:
    """The refactor's hard regression gate: goldens from before the
    DispatchPolicy indirection existed."""

    def test_chaos_render_matches_golden(self):
        rendered = render_chaos(run_chaos(ChaosConfig(**FAST_CHAOS)))
        assert rendered + "\n" == (GOLDEN / "chaos_fast_seed0.txt").read_text()

    def test_explicit_default_spec_matches_golden(self):
        rendered = render_chaos(
            run_chaos(ChaosConfig(dispatch="push-least-loaded", **FAST_CHAOS))
        )
        assert rendered + "\n" == (GOLDEN / "chaos_fast_seed0.txt").read_text()

    def test_sharded_trace_matches_golden(self):
        result = run_sharded_chaos(
            ShardedChaosConfig(**FAST_SHARDED), shards=1, parallel=False
        )
        assert trace_jsonl(result) == (
            GOLDEN / "sharded_fast_seed0.jsonl"
        ).read_text()

    def test_non_default_policy_changes_the_header_only_then(self):
        default = render_chaos(run_chaos(ChaosConfig(**FAST_CHAOS)))
        assert "dispatch=" not in default
        pulled = render_chaos(
            run_chaos(ChaosConfig(dispatch="pull", **FAST_CHAOS))
        )
        assert "dispatch=pull" in pulled


class TestEveryPolicyIsShardInvariant:
    @pytest.mark.slow
    @given(
        policy=st.sampled_from(ALL_POLICIES),
        seed=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=8, deadline=None)
    def test_merged_trace_identical_at_shards_1_2_4(self, policy, seed):
        baseline = _merged_trace(policy, seed, shards=1)
        assert _merged_trace(policy, seed, shards=2) == baseline
        assert _merged_trace(policy, seed, shards=4) == baseline

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_two_same_seed_runs_are_byte_identical(self, policy):
        first = _merged_trace(policy, seed=0, shards=1)
        second = _merged_trace(policy, seed=0, shards=1)
        assert first == second

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_every_policy_runs_fast_chaos_clean(self, policy):
        result = run_chaos(ChaosConfig(dispatch=policy, **FAST_CHAOS))
        assert result.ok, {
            mode: outcome.violations
            for mode, outcome in result.outcomes.items()
        }
