"""Dispatch-policy API: registry semantics, hooks, and each contender.

The pluggable dispatch layer (DESIGN.md §15) routes every gateway
placement decision through a :class:`DispatchPolicy`.  These tests pin
the registry convention (specs, env var, ``register_*`` /
``set_default_*``), the accelerator eligibility filter, and the
per-policy behaviour the zoo study relies on.
"""

import pytest

from repro.faas import FunctionSpec
from repro.faas.cluster import FaaSCluster
from repro.policyreg import PolicyRegistry
from repro.resilience import (
    DeadlineAwarePolicy,
    DispatchPolicy,
    MqfqStickyPolicy,
    PullQueuePolicy,
    PushPlacementPolicy,
    RequestState,
    ResilienceConfig,
    ResilientGateway,
    default_dispatch_policy,
    dispatch_policy_kinds,
    eligible_candidates,
    make_dispatch_policy,
    set_default_dispatch_policy,
)
from repro.resilience.policies import DISPATCH_POLICIES
from repro.sim.units import milliseconds, seconds
from repro.workloads import FirewallWorkload, SysbenchCpuWorkload


def make_stack(hosts=2, seed=4, dispatch="push-least-loaded", warm=2):
    cluster = FaaSCluster(hosts=hosts, seed=seed)
    cluster.register(FunctionSpec("fw", FirewallWorkload()))
    cluster.provision_warm("fw", per_host=warm)
    gateway = ResilientGateway(
        cluster, ResilienceConfig(dispatch=dispatch), seed=seed
    )
    return cluster, gateway


class TestRegistry:
    def test_all_four_families_registered(self):
        assert DISPATCH_POLICIES.families() == [
            "deadline",
            "mqfq-sticky",
            "pull",
            "push-least-loaded",
        ]

    def test_kinds_show_parameter_syntax(self):
        kinds = dispatch_policy_kinds()
        assert "pull[-<slots>]" in kinds
        assert "deadline[-<slack_ms>]" in kinds
        assert "push-least-loaded" in kinds

    def test_make_exact_and_parameterized(self):
        assert isinstance(make_dispatch_policy("pull"), PullQueuePolicy)
        assert make_dispatch_policy("pull-3").slots == 3
        assert make_dispatch_policy(
            "deadline-10"
        ).tight_slack_ns == milliseconds(10)
        assert isinstance(
            make_dispatch_policy("mqfq-sticky"), MqfqStickyPolicy
        )

    def test_unknown_and_malformed_specs_raise(self):
        for spec in ("", "nope", "pull-", "pull-x", "deadline-ms"):
            with pytest.raises(ValueError):
                make_dispatch_policy(spec)

    def test_default_is_push_least_loaded(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISPATCH_POLICY", raising=False)
        assert default_dispatch_policy() == "push-least-loaded"

    def test_env_var_overrides_builtin(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH_POLICY", "pull-2")
        assert default_dispatch_policy() == "pull-2"

    def test_invalid_env_var_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH_POLICY", "garbage")
        assert default_dispatch_policy() == "push-least-loaded"

    def test_set_default_validates_and_returns_previous(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISPATCH_POLICY", raising=False)
        previous = set_default_dispatch_policy("mqfq-sticky")
        try:
            assert previous == "push-least-loaded"
            assert default_dispatch_policy() == "mqfq-sticky"
            with pytest.raises(ValueError):
                set_default_dispatch_policy("nope")
        finally:
            set_default_dispatch_policy(previous)

    def test_duplicate_family_rejected(self):
        registry = PolicyRegistry(axis="x", env_var="X", builtin="a")
        registry.register("a", lambda spec: spec)
        with pytest.raises(ValueError):
            registry.register("a", lambda spec: spec)

    def test_longest_parameterized_family_wins(self):
        registry = PolicyRegistry(axis="x", env_var="X", builtin="a")
        registry.register("a", lambda spec: ("a", spec), parameterized=True)
        registry.register(
            "a-b", lambda spec: ("a-b", spec), parameterized=True
        )
        assert registry.make("a-b-1") == ("a-b", "a-b-1")
        assert registry.make("a-1") == ("a", "a-1")


class TestAcceleratorTags:
    def test_tag_accelerator_validates_index_and_tags(self):
        cluster = FaaSCluster(hosts=2, seed=0)
        with pytest.raises(ValueError):
            cluster.tag_accelerator(5, "gpu")
        with pytest.raises(ValueError):
            cluster.tag_accelerator(0)
        with pytest.raises(ValueError):
            cluster.tag_accelerator(0, "  ")

    def test_tags_merge_sorted_and_deduped(self):
        cluster = FaaSCluster(hosts=2, seed=0)
        cluster.tag_accelerator(0, "gpu", "fpga", "gpu")
        cluster.tag_accelerator(0, "tpu")
        assert cluster.accelerators[0] == ("fpga", "gpu", "tpu")

    def test_spec_rejects_padded_accelerator(self):
        with pytest.raises(ValueError):
            FunctionSpec("f", FirewallWorkload(), accelerator=" gpu")

    def test_untagged_cluster_returns_input_list_unfiltered(self):
        cluster = FaaSCluster(hosts=2, seed=0)
        cluster.register(
            FunctionSpec("infer", FirewallWorkload(), accelerator="gpu")
        )
        candidates = [0, 1]
        assert eligible_candidates(cluster, "infer", candidates) is candidates

    def test_tagged_cluster_filters_by_requirement(self):
        cluster = FaaSCluster(hosts=3, seed=0)
        cluster.register(
            FunctionSpec("infer", FirewallWorkload(), accelerator="gpu")
        )
        cluster.register(FunctionSpec("plain", SysbenchCpuWorkload()))
        cluster.tag_accelerator(1, "gpu")
        assert eligible_candidates(cluster, "infer", [0, 1, 2]) == [1]
        plain = [0, 1, 2]
        assert eligible_candidates(cluster, "plain", plain) is plain


class TestBinding:
    def test_rebinding_to_a_different_gateway_raises(self):
        _, first = make_stack(seed=1)
        _, second = make_stack(seed=2)
        policy = first.dispatch
        with pytest.raises(ValueError):
            policy.bind(second)
        policy.bind(first)  # idempotent on the same gateway

    def test_base_hooks_are_push_shaped_noops(self):
        policy = DispatchPolicy()
        assert policy.on_host_idle(0) is False
        assert policy.order_queue([1, 2]) == [1, 2]
        assert policy.invariant_violations() == []
        with pytest.raises(NotImplementedError):
            policy.select_host(None, [0])


class TestPushPolicy:
    def test_gateway_default_is_push(self):
        _, gateway = make_stack()
        assert isinstance(gateway.dispatch, PushPlacementPolicy)
        assert gateway.dispatch.name == "push-least-loaded"

    def test_matches_cluster_placement_without_tags(self):
        cluster, gateway = make_stack(hosts=4, seed=7)
        request = gateway.submit("fw")
        assert request.attempts  # a host was chosen, not parked
        assert gateway.invariant_violations() == []


class TestPullPolicy:
    def test_slots_validated(self):
        with pytest.raises(ValueError):
            PullQueuePolicy(slots=0)

    def test_never_exceeds_slot_depth(self):
        cluster, gateway = make_stack(hosts=2, seed=3, dispatch="pull-1")
        for _ in range(8):
            gateway.submit("fw")
        for pairs in gateway._inflight.values():
            assert len(pairs) <= 1
        cluster.engine.run(until=seconds(30))
        assert gateway.invariant_violations() == []
        assert all(r.state.terminal for r in gateway.requests)

    def test_saturated_fleet_parks_then_drains_on_completion(self):
        cluster, gateway = make_stack(hosts=2, seed=3, dispatch="pull-1")
        requests = [gateway.submit("fw") for _ in range(6)]
        assert any(not r.attempts for r in requests)  # parked overflow
        cluster.engine.run(until=seconds(30))
        assert all(
            r.state is RequestState.COMPLETED for r in requests
        )

    def test_queue_releases_high_priority_first(self):
        policy = PullQueuePolicy()

        class Stub:
            def __init__(self, request_id, priority):
                self.request_id = request_id
                self.priority = priority

        parked = [Stub(0, 0), Stub(1, 1), Stub(2, 0), Stub(3, 1)]
        drained = list(policy.order_queue(parked))
        assert [r.request_id for r in drained] == [1, 3, 0, 2]


class TestMqfqPolicy:
    def test_tags_are_stamped_and_retired(self):
        cluster, gateway = make_stack(hosts=2, seed=5, dispatch="mqfq-sticky")
        policy = gateway.dispatch
        request = gateway.submit("fw")
        assert request.request_id in policy._tags
        cluster.engine.run(until=seconds(10))
        assert request.state is RequestState.COMPLETED
        assert request.request_id not in policy._tags
        assert gateway.invariant_violations() == []

    def test_flow_finish_tags_advance_by_inverse_weight(self):
        policy = MqfqStickyPolicy()

        class Stub:
            def __init__(self, request_id, function, priority):
                self.request_id = request_id
                self.function = function
                self.priority = priority

        policy.on_submit(Stub(0, "ull", 1))
        policy.on_submit(Stub(1, "batch", 0))
        assert policy._finish["batch"] == 4 * policy._finish["ull"]

    def test_queue_drains_in_virtual_time_order(self):
        policy = MqfqStickyPolicy()

        class Stub:
            def __init__(self, request_id, function, priority):
                self.request_id = request_id
                self.function = function
                self.priority = priority

        stubs = [Stub(i, f"flow{i}", 0) for i in range(3)]
        for stub in reversed(stubs):
            policy.on_submit(stub)
        # All flows start at tag 0; ties break by request id.
        assert [r.request_id for r in policy.order_queue(stubs)] == [0, 1, 2]

    def test_crash_clears_sticky_pointers(self):
        policy = MqfqStickyPolicy()
        policy._last_host = {"a": 0, "b": 1}
        policy.on_crash(0, now_ns=0)
        assert policy._last_host == {"b": 1}

    def test_sticky_depth_validated(self):
        with pytest.raises(ValueError):
            MqfqStickyPolicy(sticky_depth=0)


class TestDeadlinePolicy:
    def test_slack_validated(self):
        with pytest.raises(ValueError):
            DeadlineAwarePolicy(tight_slack_ns=-1)

    def test_queue_drains_earliest_deadline_first(self):
        policy = DeadlineAwarePolicy()

        class Stub:
            def __init__(self, request_id, deadline_ns):
                self.request_id = request_id
                self.deadline_ns = deadline_ns

        parked = [Stub(0, 300), Stub(1, 100), Stub(2, 200), Stub(3, 100)]
        drained = list(policy.order_queue(parked))
        assert [r.request_id for r in drained] == [1, 3, 2, 0]

    def test_runs_clean_end_to_end(self):
        cluster, gateway = make_stack(hosts=2, seed=9, dispatch="deadline")
        for _ in range(10):
            gateway.submit("fw", priority=1, deadline_ns=milliseconds(200))
        cluster.engine.run(until=seconds(30))
        assert gateway.invariant_violations() == []
        assert all(r.state.terminal for r in gateway.requests)


class TestConfigWiring:
    def test_resilience_config_none_means_process_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISPATCH_POLICY", raising=False)
        _, gateway = make_stack(dispatch=None)
        assert gateway.dispatch.name == "push-least-loaded"

    def test_resilience_config_spec_selects_policy(self):
        _, gateway = make_stack(dispatch="pull-2")
        assert isinstance(gateway.dispatch, PullQueuePolicy)
        assert gateway.dispatch.slots == 2

    def test_chaos_config_validates_dispatch_eagerly(self):
        from repro.experiments.chaos import ChaosConfig

        with pytest.raises(ValueError):
            ChaosConfig(dispatch="nope")

    def test_zoo_config_validates_policies_and_mixes(self):
        from repro.experiments.dispatch_zoo import DispatchZooConfig

        with pytest.raises(ValueError):
            DispatchZooConfig(policies=("nope",))
        with pytest.raises(ValueError):
            DispatchZooConfig(mixes=("weird",))
