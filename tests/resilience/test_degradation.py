"""Degradation ladder and the load-shedding admission controller."""

import pytest

from repro.faas.invocation import StartType
from repro.resilience.degradation import (
    DEGRADATION_LADDER,
    AdmissionConfig,
    AdmissionController,
    DegradationStats,
    degrade,
    ladder_level,
    plan_with_ladder,
)


class TestLadder:
    def test_order_hot_to_cold(self):
        assert DEGRADATION_LADDER == (
            StartType.HORSE, StartType.WARM, StartType.COLD
        )

    def test_degrade_steps(self):
        assert degrade(StartType.HORSE) is StartType.WARM
        assert degrade(StartType.WARM) is StartType.COLD
        assert degrade(StartType.COLD) is StartType.COLD

    def test_restore_treated_as_bottom(self):
        # RESTORE is off-ladder (snapshot templates cannot be assumed on
        # a degraded node): it maps to the bottom rung.
        assert ladder_level(StartType.RESTORE) == 2
        assert degrade(StartType.RESTORE) is StartType.COLD

    def test_plan_with_ladder_miss(self):
        assert plan_with_ladder(0, StartType.HORSE) == (
            StartType.COLD, "horse->cold"
        )
        assert plan_with_ladder(0, StartType.WARM) == (
            StartType.COLD, "warm->cold"
        )

    def test_plan_with_ladder_hit(self):
        assert plan_with_ladder(2, StartType.HORSE) == (StartType.HORSE, None)
        assert plan_with_ladder(0, StartType.COLD) == (StartType.COLD, None)


class TestAdmission:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(capacity=0)
        with pytest.raises(ValueError):
            AdmissionConfig(capacity=4, reserved_slots=4)

    def test_low_priority_hits_watermark_first(self):
        controller = AdmissionController(
            AdmissionConfig(capacity=10, reserved_slots=2, reserved_priority=1)
        )
        assert controller.limit_for(0) == 8
        assert controller.limit_for(1) == 10
        assert not controller.admit(0, in_flight=8)
        assert controller.admit(1, in_flight=8)

    def test_full_capacity_sheds_everyone(self):
        controller = AdmissionController(
            AdmissionConfig(capacity=10, reserved_slots=2)
        )
        assert not controller.admit(5, in_flight=10)

    def test_shed_accounting_by_priority(self):
        controller = AdmissionController(
            AdmissionConfig(capacity=4, reserved_slots=2, reserved_priority=1)
        )
        controller.admit(0, in_flight=0)
        controller.admit(0, in_flight=3)
        controller.admit(1, in_flight=3)
        assert controller.admitted == 2
        assert controller.shed == 1
        assert controller.shed_by_priority == {0: 1}


class TestStats:
    def test_record_keyed_by_transition(self):
        stats = DegradationStats()
        stats.record(StartType.HORSE, StartType.WARM)
        stats.record(StartType.HORSE, StartType.WARM)
        stats.record(StartType.WARM, StartType.COLD)
        assert stats.transitions == {"horse->warm": 2, "warm->cold": 1}
        assert stats.total() == 3

    def test_self_transition_ignored(self):
        stats = DegradationStats()
        stats.record(StartType.COLD, StartType.COLD)
        assert stats.total() == 0
