"""ResilientGateway end-to-end: retries, hedging, crashes, shedding.

The scenarios here drive the whole stack — gateway over cluster over
hypervisor fault hooks — through the sim engine, and always finish by
auditing the request ledger (``invariant_violations`` /
``unresolved_violations``): no request may be lost, double-counted, or
resolved two ways.
"""

import pytest

from repro.faas import FunctionSpec
from repro.faas.cluster import FaaSCluster
from repro.hypervisor.pause_resume import (
    RESUME_FAULT_HUNG,
    RESUME_FAULT_TRANSIENT,
    ResumeFault,
)
from repro.resilience import (
    AdmissionConfig,
    BreakerConfig,
    BreakerState,
    FailureConfig,
    FailureInjector,
    RequestState,
    ResilienceConfig,
    ResilientGateway,
    RetryPolicy,
    breaker_checker,
    request_ledger_checker,
)
from repro.sim.units import microseconds, milliseconds, seconds
from repro.workloads import FirewallWorkload


def make_stack(hosts=2, seed=4, config=None, warm=2):
    cluster = FaaSCluster(hosts=hosts, seed=seed)
    cluster.register(FunctionSpec("fw", FirewallWorkload()))
    cluster.provision_warm("fw", per_host=warm)
    gateway = ResilientGateway(
        cluster, config or ResilienceConfig(), seed=seed
    )
    return cluster, gateway


def transient_fault(sandbox, now):
    return ResumeFault(RESUME_FAULT_TRANSIENT)


def fault_all_resumes(host, hook):
    """Install *hook* on both resume paths (HORSE hot resume and the
    vanilla warm resume the ladder degrades to)."""
    host.horse.fault_hook = hook
    host.virt.vanilla.fault_hook = hook


def hung_fault(sandbox, now):
    return ResumeFault(RESUME_FAULT_HUNG)


def fail_first(count, kind=RESUME_FAULT_TRANSIENT):
    """A hook that faults the first *count* resumes, then heals."""
    remaining = [count]

    def hook(sandbox, now):
        if remaining[0] > 0:
            remaining[0] -= 1
            return ResumeFault(kind)
        return None

    return hook


def audit(gateway):
    assert gateway.invariant_violations() == []
    assert gateway.unresolved_violations() == []


class TestHappyPath:
    def test_submit_completes(self):
        cluster, gateway = make_stack()
        request = gateway.submit("fw", priority=1)
        cluster.engine.run(until=seconds(1))
        assert request.state is RequestState.COMPLETED
        assert request.resolution == "attempt-0"
        assert request.retries == 0
        assert request.hedges_used == 0
        assert request.latency_ns is not None and request.latency_ns > 0
        audit(gateway)

    def test_fast_completion_never_hedges(self):
        # The primary finishes in ~20 us, far under the 1 ms hedge delay.
        cluster, gateway = make_stack()
        request = gateway.submit("fw")
        cluster.engine.run(until=seconds(1))
        assert len(request.attempts) == 1
        assert request.redundant_hedges == 0


class TestAdmission:
    def shed_config(self, capacity=1, reserved=0):
        return ResilienceConfig(
            admission=AdmissionConfig(
                capacity=capacity, reserved_slots=reserved,
                reserved_priority=1,
            )
        )

    def test_overload_sheds_without_launching(self):
        cluster, gateway = make_stack(config=self.shed_config(capacity=1))
        first = gateway.submit("fw")
        second = gateway.submit("fw")  # same instant: first still active
        assert first.state is RequestState.IN_FLIGHT
        assert second.state is RequestState.SHED
        assert second.resolution == "admission-overload"
        assert second.attempts == []
        cluster.engine.run(until=seconds(1))
        audit(gateway)

    def test_reserved_headroom_protects_high_priority(self):
        cluster, gateway = make_stack(
            config=self.shed_config(capacity=2, reserved=1)
        )
        gateway.submit("fw", priority=0)
        low = gateway.submit("fw", priority=0)   # over the 1-slot watermark
        high = gateway.submit("fw", priority=1)  # may use the reserve
        assert low.state is RequestState.SHED
        assert high.state is RequestState.IN_FLIGHT
        cluster.engine.run(until=seconds(1))
        assert high.state is RequestState.COMPLETED

    def test_capacity_frees_on_completion(self):
        cluster, gateway = make_stack(config=self.shed_config(capacity=1))
        gateway.submit("fw")
        cluster.engine.run(until=seconds(1))
        late = gateway.submit("fw")
        assert late.state is RequestState.IN_FLIGHT


class TestRetries:
    def test_transient_fault_retried_to_success(self):
        cluster, gateway = make_stack()
        for host in cluster.hosts:
            host.horse.fault_hook = fail_first(1)
        request = gateway.submit("fw")
        cluster.engine.run(until=seconds(1))
        assert request.state is RequestState.COMPLETED
        assert request.retries >= 1
        assert request.attempts[0].status == "transient"
        audit(gateway)

    def test_transient_fault_repools_sandbox(self):
        cluster, gateway = make_stack(hosts=1, warm=2)
        cluster.hosts[0].horse.fault_hook = fail_first(1)
        gateway.submit("fw")
        cluster.engine.run(until=seconds(1))
        # One sandbox served the retry and re-pooled; the faulted one
        # was handed straight back.  Nothing leaked.
        assert cluster.hosts[0].pool.size("fw") == 2

    def test_budget_exhaustion_fails_explicitly(self):
        # Budget of 2 keeps every attempt on the resume path (attempt 3
        # would ride the ladder down to COLD, which cannot fault).
        config = ResilienceConfig(retry=RetryPolicy(max_attempts=2))
        cluster, gateway = make_stack(config=config)
        for host in cluster.hosts:
            fault_all_resumes(host, transient_fault)  # never heals
        request = gateway.submit("fw")
        cluster.engine.run(until=seconds(1))
        assert request.state is RequestState.FAILED
        assert request.resolution == "retry-budget"
        assert request.primary_attempts == gateway.config.retry.max_attempts
        audit(gateway)

    def test_ladder_bottoms_out_at_cold(self):
        # With the full budget, persistent resume faults walk the
        # request down the ladder until a cold start saves it.
        cluster, gateway = make_stack()
        for host in cluster.hosts:
            fault_all_resumes(host, transient_fault)
        request = gateway.submit("fw")
        cluster.engine.run(until=seconds(5))  # cold starts take ~1.5 s
        assert request.state is RequestState.COMPLETED
        assert gateway.degradations.total() >= 2
        audit(gateway)

    def test_deadline_gates_new_attempts(self):
        config = ResilienceConfig(
            retry=RetryPolicy(
                base_backoff_ns=milliseconds(1),
                max_backoff_ns=milliseconds(5),
            )
        )
        cluster, gateway = make_stack(config=config)
        for host in cluster.hosts:
            fault_all_resumes(host, transient_fault)
        request = gateway.submit("fw", deadline_ns=microseconds(100))
        cluster.engine.run(until=seconds(1))
        assert request.state is RequestState.FAILED
        assert request.resolution == "deadline"
        # The deadline bounded retrying well under the attempt budget.
        assert request.primary_attempts < gateway.config.retry.max_attempts
        audit(gateway)


class TestHedging:
    def test_hedge_beats_hung_primary(self):
        cluster, gateway = make_stack(hosts=2)
        cluster.hosts[0].horse.fault_hook = hung_fault  # primary target
        request = gateway.submit("fw")
        cluster.engine.run(until=seconds(1))
        assert request.state is RequestState.COMPLETED
        assert request.hedges_used == 1
        assert request.attempts[0].status == "hung"
        hedge = request.attempts[1]
        assert hedge.hedge and hedge.host == 1
        # The hedge capped the hang at roughly the hedge delay, far
        # below the 10 ms hang-detection timeout.
        assert request.latency_ns < gateway.config.retry.hang_timeout_ns
        assert request.latency_ns >= gateway.config.hedge.delay_ns
        audit(gateway)

    def test_hung_sandbox_destroyed_at_timeout(self):
        cluster, gateway = make_stack(hosts=2, warm=1)
        cluster.hosts[0].horse.fault_hook = hung_fault
        gateway.submit("fw")
        cluster.engine.run(until=seconds(1))
        # Host 0's only warm sandbox hung and was written off.
        assert cluster.hosts[0].pool.size("fw") == 0

    def test_single_host_cannot_hedge(self):
        cluster, gateway = make_stack(hosts=1)
        request = gateway.submit("fw")
        cluster.engine.run(until=seconds(1))
        assert request.hedges_used == 0
        assert request.state is RequestState.COMPLETED


class TestCrashHandling:
    def make_injected(self, hosts=2):
        cluster, gateway = make_stack(hosts=hosts)
        injector = FailureInjector(
            cluster, FailureConfig(failure_rate=0.0), seed=0
        )
        gateway.attach(injector)
        return cluster, gateway, injector

    def test_crash_cancels_and_redispatches(self):
        cluster, gateway, injector = self.make_injected()
        request = gateway.submit("fw")  # lands on host 0 (tie -> lowest)
        primary = request.attempts[0]
        assert primary.host == 0
        # Strike mid-execution: firewall runs ~20 us, crash at 5 us.
        cluster.engine.schedule_at(5_000, lambda: injector._crash(0))
        cluster.engine.run(until=seconds(1))
        assert request.state is RequestState.COMPLETED
        assert primary.status == "crash"
        assert primary.invocation is not None and primary.invocation.cancelled
        assert request.attempts[-1].host == 1
        assert injector.fired["node_crash"] == 1
        audit(gateway)

    def test_recovery_rewarms_host(self):
        cluster, gateway, injector = self.make_injected()
        cluster.engine.schedule_at(5_000, lambda: injector._crash(0))
        cluster.engine.schedule_at(
            milliseconds(2), lambda: injector._recover(0)
        )
        gateway.submit("fw")
        cluster.engine.run(until=seconds(1))
        assert cluster.health[0].up
        assert (
            cluster.hosts[0].pool.size("fw")
            >= gateway.config.rewarm_per_host
        )

    def test_crash_with_no_inflight_is_harmless(self):
        cluster, gateway, injector = self.make_injected()
        cluster.engine.schedule_at(5_000, lambda: injector._crash(0))
        cluster.engine.run(until=seconds(1))
        request = gateway.submit("fw")
        cluster.engine.run(until=seconds(2))
        assert request.state is RequestState.COMPLETED
        audit(gateway)


class TestBreakerSteering:
    def test_open_breaker_steers_to_healthy_host(self):
        config = ResilienceConfig(
            breaker=BreakerConfig(failure_threshold=2, open_ns=seconds(1))
        )
        cluster, gateway = make_stack(hosts=2, config=config)
        fault_all_resumes(cluster.hosts[0], transient_fault)
        request = gateway.submit("fw")
        cluster.engine.run(until=seconds(5))  # ladder may reach cold (~1.5 s)
        assert request.state is RequestState.COMPLETED
        assert gateway.breakers[0].open_count >= 1
        winner = next(a for a in request.attempts if a.status == "ok")
        assert winner.host == 1
        audit(gateway)

    def test_gated_cluster_waits_then_probes_through(self):
        config = ResilienceConfig(
            breaker=BreakerConfig(
                failure_threshold=1, open_ns=milliseconds(1)
            )
        )
        cluster, gateway = make_stack(hosts=1, config=config)
        cluster.hosts[0].horse.fault_hook = fail_first(1)
        request = gateway.submit("fw")
        cluster.engine.run(until=seconds(1))
        # The lone host's breaker opened; with nowhere to route, the
        # gateway waited, then the half-open probe let the retry through.
        assert request.state is RequestState.COMPLETED
        assert request.no_host_waits >= 1
        assert gateway.breakers[0].state is BreakerState.CLOSED
        audit(gateway)


class TestCheckers:
    def test_checkers_quiet_on_sound_ledger(self):
        cluster, gateway = make_stack()
        gateway.submit("fw")
        cluster.engine.run(until=seconds(1))
        assert breaker_checker(gateway)(cluster.engine.now) == []
        assert request_ledger_checker(gateway)(cluster.engine.now) == []

    def test_ledger_checker_catches_forged_shed(self):
        cluster, gateway = make_stack()
        request = gateway.submit("fw")
        cluster.engine.run(until=seconds(1))
        request.state = RequestState.SHED  # corrupt: completed AND shed
        problems = request_ledger_checker(gateway)(cluster.engine.now)
        assert any("shed" in message for message in problems)


class TestNoLostInvocations:
    """Acceptance: under seeded 10 % failure, every admitted request
    completes or is explicitly shed/failed — nothing is ever lost."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_everything_resolves(self, seed):
        cluster, gateway = make_stack(hosts=3, seed=seed, warm=2)
        injector = FailureInjector(
            cluster,
            FailureConfig(failure_rate=0.1, crash_mtbf_base_s=0.25),
            seed=seed,
        )
        gateway.attach(injector)
        total = 150
        for index in range(total):
            cluster.engine.schedule_at(
                microseconds(500) * (index + 1),
                lambda: gateway.submit("fw", priority=1),
            )
        last = microseconds(500) * total
        injector.schedule_crashes(until_ns=last)
        cluster.engine.run(until=last + seconds(15))
        assert len(gateway.requests) == total
        resolved = (
            len(gateway.by_state(RequestState.COMPLETED))
            + len(gateway.by_state(RequestState.SHED))
            + len(gateway.by_state(RequestState.FAILED))
        )
        assert resolved == total
        audit(gateway)
