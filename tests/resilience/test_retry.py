"""Backoff and hedging policies."""

import random

import pytest

from repro.resilience.retry import HedgePolicy, RetryPolicy


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_ns=100, max_backoff_ns=50)
        with pytest.raises(ValueError):
            RetryPolicy(hang_timeout_ns=0)

    def test_backoff_within_jitter_band(self):
        policy = RetryPolicy(base_backoff_ns=1000, multiplier=2.0,
                             max_backoff_ns=100_000)
        rng = random.Random(0)
        for attempt, ceiling in ((1, 1000), (2, 2000), (3, 4000)):
            for _ in range(50):
                delay = policy.backoff_ns(attempt, rng)
                assert ceiling / 2 <= delay <= ceiling

    def test_backoff_capped(self):
        policy = RetryPolicy(base_backoff_ns=1000, multiplier=10.0,
                             max_backoff_ns=5000)
        rng = random.Random(1)
        assert all(policy.backoff_ns(9, rng) <= 5000 for _ in range(50))

    def test_backoff_never_zero(self):
        policy = RetryPolicy(base_backoff_ns=0, max_backoff_ns=0)
        assert policy.backoff_ns(1, random.Random(2)) >= 1

    def test_backoff_deterministic_per_seed(self):
        policy = RetryPolicy()
        a = [policy.backoff_ns(i, random.Random(7)) for i in range(1, 5)]
        b = [policy.backoff_ns(i, random.Random(7)) for i in range(1, 5)]
        assert a == b

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ns(0, random.Random(0))


class TestHedgePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(delay_ns=0)
        with pytest.raises(ValueError):
            HedgePolicy(max_hedges=-1)

    def test_disabled_constructor(self):
        assert not HedgePolicy.disabled().enabled
