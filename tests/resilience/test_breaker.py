"""Circuit breaker state machine."""

import pytest

from repro.resilience.breaker import (
    LEGAL_TRANSITIONS,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.sim.units import milliseconds


def make_breaker(threshold=3, open_ns=milliseconds(1)):
    return CircuitBreaker(
        BreakerConfig(failure_threshold=threshold, open_ns=open_ns), name="h0"
    )


class TestConfig:
    def test_zero_threshold_rejected(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)

    def test_negative_open_rejected(self):
        with pytest.raises(ValueError):
            BreakerConfig(open_ns=-1)

    def test_zero_probes_rejected(self):
        with pytest.raises(ValueError):
            BreakerConfig(half_open_probes=0)


class TestClosedToOpen:
    def test_starts_closed_and_allowing(self):
        breaker = make_breaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(0)

    def test_trips_at_threshold(self):
        breaker = make_breaker(threshold=3)
        breaker.record_failure(10)
        breaker.record_failure(20)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(30)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(31)

    def test_success_resets_consecutive_count(self):
        breaker = make_breaker(threshold=2)
        breaker.record_failure(10)
        breaker.record_success(20)
        breaker.record_failure(30)
        assert breaker.state is BreakerState.CLOSED

    def test_open_records_timestamp(self):
        breaker = make_breaker(threshold=1)
        breaker.record_failure(42)
        assert breaker.opened_at_ns == 42


class TestHalfOpen:
    def test_reopens_lazily_after_interval(self):
        breaker = make_breaker(threshold=1, open_ns=100)
        breaker.record_failure(0)
        assert not breaker.allow(99)
        assert breaker.allow(100)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_budget_enforced(self):
        breaker = make_breaker(threshold=1, open_ns=100)
        breaker.record_failure(0)
        assert breaker.allow(100)
        breaker.on_attempt(100)
        assert not breaker.allow(101)  # one probe already out

    def test_probe_success_closes(self):
        breaker = make_breaker(threshold=1, open_ns=100)
        breaker.record_failure(0)
        breaker.allow(100)
        breaker.on_attempt(100)
        breaker.record_success(150)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(151)

    def test_probe_failure_reopens(self):
        breaker = make_breaker(threshold=1, open_ns=100)
        breaker.record_failure(0)
        breaker.allow(100)
        breaker.on_attempt(100)
        breaker.record_failure(150)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at_ns == 150
        assert not breaker.allow(200)
        assert breaker.allow(250)  # 150 + 100


class TestAudit:
    def test_transitions_recorded_and_legal(self):
        breaker = make_breaker(threshold=1, open_ns=100)
        breaker.record_failure(0)
        breaker.allow(100)
        breaker.on_attempt(100)
        breaker.record_success(150)
        edges = [(t.source, t.target) for t in breaker.transitions]
        assert edges == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]
        assert all(edge in LEGAL_TRANSITIONS for edge in edges)
        assert breaker.invariant_violations() == []

    def test_open_count(self):
        breaker = make_breaker(threshold=1, open_ns=100)
        breaker.record_failure(0)
        breaker.allow(100)
        breaker.on_attempt(100)
        breaker.record_failure(150)
        assert breaker.open_count == 2

    def test_illegal_edge_reported(self):
        breaker = make_breaker()
        breaker._transition(BreakerState.HALF_OPEN, 5, "forged")
        problems = breaker.invariant_violations()
        assert any("illegal transition" in message for message in problems)

    def test_state_desync_reported(self):
        breaker = make_breaker(threshold=1)
        breaker.record_failure(0)
        breaker.state = BreakerState.CLOSED  # corrupt live state
        problems = breaker.invariant_violations()
        assert any("live state" in message for message in problems)

    def test_non_monotone_timestamps_reported(self):
        breaker = make_breaker(threshold=1, open_ns=0)
        breaker.record_failure(100)
        breaker.allow(100)
        breaker.on_attempt(100)
        breaker.record_success(50)  # goes backwards
        problems = breaker.invariant_violations()
        assert any("monotone" in message for message in problems)


class TestMemoryLayout:
    """S1: breakers sit on the per-request hot path — one per host per
    gateway incarnation — so they must stay ``__slots__``-only, like
    Request/Attempt already are."""

    def test_breaker_objects_have_no_dict(self):
        breaker = make_breaker()
        assert not hasattr(breaker, "__dict__")
        assert not hasattr(breaker.config, "__dict__")
        with pytest.raises(AttributeError):
            breaker.accidental_new_attribute = 1

    def test_transition_records_are_slotted(self):
        breaker = make_breaker(threshold=1)
        breaker.record_failure(0)
        transition = breaker.transitions[0]
        assert not hasattr(transition, "__dict__")

    def test_allocation_count_stays_flat_across_churn(self):
        """Driving the full CLOSED→OPEN→HALF_OPEN→CLOSED cycle many
        times must allocate only the audit records, never per-call
        garbage that would show up as dict churn."""
        import tracemalloc

        breaker = make_breaker(threshold=1, open_ns=1)
        now = 0

        def cycle(now):
            breaker.record_failure(now)          # -> OPEN
            now += 2
            breaker.allow(now)                   # -> HALF_OPEN (lazy)
            breaker.on_attempt(now)
            breaker.record_success(now)          # -> CLOSED
            return now + 2

        for _ in range(10):                      # warm up interned state
            now = cycle(now)
        baseline_transitions = len(breaker.transitions)
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(100):
            now = cycle(now)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        grew = sum(
            s.count_diff for s in after.compare_to(before, "lineno")
            if s.count_diff > 0
        )
        transitions_added = len(breaker.transitions) - baseline_transitions
        assert transitions_added == 300          # 3 edges per cycle
        # Each cycle allocates its 3 audit records plus their boxed
        # timestamps; an extra __dict__ per record (what dropping
        # __slots__ would cost) adds another block per object and blows
        # past this envelope.
        assert grew <= transitions_added * 2 + 20
