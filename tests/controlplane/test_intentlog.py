"""Intent log and the log-derived invariants."""

from repro.controlplane import IntentLog, intent_log_violations


def _admitted(log, origin, t=0, epoch=0):
    log.admit(
        t=t, origin=origin, epoch=epoch, function="firewall",
        priority=1, submit_ns=t, deadline_ns=t + 1000,
    )


class TestLog:
    def test_open_admits_are_the_redispatch_worklist(self):
        log = IntentLog(0)
        _admitted(log, 1, t=10)
        _admitted(log, 2, t=20)
        _admitted(log, 3, t=30)
        log.launch(t=11, origin=1, epoch=0, fence=1, host=0)
        log.outcome(t=15, origin=1, epoch=0, state="completed",
                    fence=1, latency_ns=5)
        open_origins = [r.origin for r in log.open_admits()]
        assert open_origins == [2, 3]

    def test_indexes_match_records(self):
        log = IntentLog(3)
        _admitted(log, 7, t=5)
        assert log.admitted(7).submit_ns == 5
        assert log.outcome_of(7) is None
        log.outcome(t=9, origin=7, epoch=0, state="shed", fence=0,
                    latency_ns=-1)
        assert log.outcome_of(7).state == "shed"
        assert len(log) == 2


class TestInvariants:
    def test_clean_log_passes(self):
        log = IntentLog(0)
        _admitted(log, 1)
        log.launch(t=1, origin=1, epoch=0, fence=1, host=0)
        log.outcome(t=2, origin=1, epoch=0, state="completed",
                    fence=1, latency_ns=2)
        assert intent_log_violations(log, final=True) == []

    def test_lost_invocation_flagged_only_at_final(self):
        log = IntentLog(0)
        _admitted(log, 1)
        assert intent_log_violations(log, final=False) == []
        problems = intent_log_violations(log, final=True)
        assert any("lost" in p for p in problems)

    def test_duplicate_admit_flagged(self):
        log = IntentLog(0)
        _admitted(log, 1)
        _admitted(log, 1)
        assert any(
            "admitted twice" in p for p in intent_log_violations(log)
        )

    def test_duplicate_outcome_flagged(self):
        log = IntentLog(0)
        _admitted(log, 1)
        log.launch(t=1, origin=1, epoch=0, fence=1, host=0)
        log.outcome(t=2, origin=1, epoch=0, state="completed",
                    fence=1, latency_ns=2)
        log.outcome(t=3, origin=1, epoch=0, state="completed",
                    fence=1, latency_ns=3)
        assert any(
            "resolved twice" in p for p in intent_log_violations(log)
        )

    def test_outcome_without_admit_flagged(self):
        log = IntentLog(0)
        log.outcome(t=2, origin=9, epoch=0, state="failed", fence=0,
                    latency_ns=-1)
        assert any(
            "without an admit" in p for p in intent_log_violations(log)
        )

    def test_non_monotone_fence_flagged(self):
        log = IntentLog(0)
        _admitted(log, 1)
        _admitted(log, 2)
        log.launch(t=1, origin=1, epoch=0, fence=5, host=0)
        log.launch(t=2, origin=2, epoch=0, fence=5, host=1)
        assert any(
            "not monotone" in p for p in intent_log_violations(log)
        )

    def test_fence_monotone_across_epochs_passes(self):
        log = IntentLog(0)
        _admitted(log, 1, epoch=0)
        log.launch(t=1, origin=1, epoch=0, fence=1, host=0)
        _admitted(log, 2, epoch=1, t=10)
        log.launch(t=11, origin=2, epoch=1, fence=2, host=0)
        log.outcome(t=12, origin=1, epoch=1, state="failed", fence=0,
                    latency_ns=-1)
        log.outcome(t=13, origin=2, epoch=1, state="completed",
                    fence=2, latency_ns=3)
        assert intent_log_violations(log, final=True) == []

    def test_cross_epoch_completion_flagged(self):
        # A launch journaled in epoch 0 must not complete the request
        # in epoch 1: the pre-crash attempt is fenced.
        log = IntentLog(0)
        _admitted(log, 1, epoch=0)
        log.launch(t=1, origin=1, epoch=0, fence=1, host=0)
        log.outcome(t=20, origin=1, epoch=1, state="completed",
                    fence=1, latency_ns=19)
        assert any(
            "cross-epoch" in p for p in intent_log_violations(log)
        )

    def test_completion_without_any_launch_flagged(self):
        log = IntentLog(0)
        _admitted(log, 1)
        log.outcome(t=2, origin=1, epoch=0, state="completed",
                    fence=0, latency_ns=2)
        assert any(
            "cross-epoch" in p for p in intent_log_violations(log)
        )

    def test_epoch_regression_flagged(self):
        log = IntentLog(0)
        _admitted(log, 1, epoch=2)
        _admitted(log, 2, epoch=1)
        assert any(
            "epoch regressed" in p for p in intent_log_violations(log)
        )
