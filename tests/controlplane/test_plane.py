"""Control-plane routing, failover spill, and frontend parking (S6)."""

import pytest

from repro.controlplane import ControlPlane, exactly_once_checker
from repro.sim.engine import Engine
from repro.sim.units import milliseconds

from tests.controlplane.conftest import build_plane


class TestRouting:
    def test_submit_lands_on_preferred_owner(self, engine):
        plane = build_plane(engine, shards=3)
        home = plane.ring.preferred("firewall")
        plane.submit("firewall", origin=1)
        assert plane.shards[home].log.admitted(1) is not None
        for index, shard in enumerate(plane.shards):
            if index != home:
                assert shard.log.admitted(1) is None

    def test_down_owner_spills_to_successor(self, engine):
        plane = build_plane(engine, shards=3)
        home = plane.ring.preferred("firewall")
        plane.crash_shard(home, engine.now)
        plane.submit("firewall", origin=2)
        spill = next(
            i for i, s in enumerate(plane.shards)
            if s.log.admitted(2) is not None
        )
        assert spill != home
        # Recovery snaps the key straight back to its home shard.
        plane.recover_shard(home, engine.now)
        plane.submit("firewall", origin=3)
        assert plane.shards[home].log.admitted(3) is not None

    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValueError):
            ControlPlane(Engine(), [])


class TestParking:
    def test_all_shards_down_parks_at_frontend(self, engine):
        plane = build_plane(engine, shards=2)
        for index in range(2):
            plane.crash_shard(index, engine.now)
        assert plane.submit("firewall", origin=1) is None
        assert plane.submit("background", origin=2) is None
        assert len(plane.parked) == 2
        assert plane.parked_total == 2 and plane.parked_peak == 2
        # FIFO order preserved.
        assert [p.origin for p in plane.parked] == [1, 2]

    def test_first_recovery_drains_the_parking_lot(self, engine):
        plane = build_plane(engine, shards=2)

        def blackout():
            for index in range(2):
                plane.crash_shard(index, engine.now)

        engine.schedule_at(milliseconds(1), blackout, label="blackout")
        engine.schedule_at(
            milliseconds(2),
            lambda: plane.submit("firewall", origin=1),
            label="submit",
        )
        engine.schedule_at(
            milliseconds(40),
            lambda: plane.recover_shard(0, engine.now),
            label="recover",
        )
        engine.run()
        assert plane.parked == []
        assert plane.drained_total == 1
        outcome = plane.shards[0].log.outcome_of(1)
        assert outcome is not None and outcome.state == "completed"
        # Latency is charged from the ORIGINAL arrival at 2 ms, so the
        # ~38 ms of frontend queueing is visible, not hidden.
        assert outcome.latency_ns >= milliseconds(38)

    def test_drain_reparks_if_all_down_again(self, engine):
        plane = build_plane(engine, shards=2)
        for index in range(2):
            plane.crash_shard(index, engine.now)
        plane.submit("firewall", origin=1)
        # Recover shard 0 but crash it inside the same instant before
        # the drained submit can route anywhere else: shard 1 is still
        # down, so the request must re-park, not be lost.
        plane.shards[0].recover(engine.now)
        plane.shards[0].down = True  # simulate immediate re-crash
        plane._drain_parked()
        assert [p.origin for p in plane.parked] == [1]

    def test_still_parked_at_end_is_a_violation(self, engine):
        plane = build_plane(engine, shards=1)
        plane.crash_shard(0, engine.now)
        plane.submit("firewall", origin=9)
        problems = exactly_once_checker(plane)(engine.now)
        assert any("still parked" in p and "9" in p for p in problems)

    def test_drained_run_passes_exactly_once(self, engine):
        plane = build_plane(engine, shards=2)
        for index in range(2):
            plane.crash_shard(index, engine.now)
        plane.submit("firewall", origin=1)
        plane.recover_shard(0, engine.now)
        plane.recover_shard(1, engine.now)
        engine.run()
        assert exactly_once_checker(plane)(engine.now) == []
