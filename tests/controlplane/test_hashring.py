"""Consistent-hash ring: stable routing, minimal movement, failover."""

import pytest

from repro.controlplane import HashRing
from repro.controlplane.hashring import _h


class TestHashStability:
    def test_sha_based_hash_is_process_stable(self):
        # Python's builtin hash() is salted per process; the ring must
        # not be.  Pin a value so any drift (hash function, byte order,
        # truncation width) fails loudly.
        assert _h("firewall") == int.from_bytes(
            __import__("hashlib").sha256(b"firewall").digest()[:8], "big"
        )

    def test_same_population_same_ring(self):
        one, two = HashRing(5), HashRing(5)
        for key in ("firewall", "background", "fn-7", ""):
            assert one.preferred(key) == two.preferred(key)


class TestRouting:
    def test_owner_requires_alive_membership(self):
        ring = HashRing(4)
        assert ring.owner("firewall", []) is None
        assert ring.owner("firewall", range(4)) == ring.preferred("firewall")

    def test_single_node_owns_everything(self):
        ring = HashRing(1)
        assert ring.preferred("a") == 0
        assert ring.owner("b", [0]) == 0

    def test_down_owner_spills_to_successor_and_snaps_back(self):
        ring = HashRing(4)
        key = "firewall"
        home = ring.preferred(key)
        alive = [i for i in range(4) if i != home]
        fallback = ring.owner(key, alive)
        assert fallback is not None and fallback != home
        # Recovery: the key snaps straight back to its home shard.
        assert ring.owner(key, range(4)) == home

    def test_other_keys_do_not_move_when_one_shard_dies(self):
        ring = HashRing(4, vnodes=64)
        keys = [f"fn-{i}" for i in range(200)]
        victim = ring.preferred(keys[0])
        alive = [i for i in range(4) if i != victim]
        for key in keys:
            home = ring.preferred(key)
            if home != victim:
                assert ring.owner(key, alive) == home

    def test_failover_walks_to_first_alive(self):
        ring = HashRing(3)
        key = "background"
        # With exactly one shard alive, it owns every key.
        for only in range(3):
            assert ring.owner(key, [only]) == only


class TestValidation:
    def test_bad_population_rejected(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(3, vnodes=0)

    def test_vnodes_spread_load(self):
        ring = HashRing(4, vnodes=64)
        owners = {ring.preferred(f"fn-{i}") for i in range(400)}
        assert owners == set(range(4))
