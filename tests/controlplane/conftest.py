"""Shared builders: one engine, N gateway shards, a control plane."""

import pytest

from repro.controlplane import ControlPlane, GatewayShard
from repro.experiments.chaos import _build_workloads
from repro.faas.cluster import FaaSCluster
from repro.faas.function import FunctionSpec
from repro.resilience import AdmissionConfig, ResilienceConfig
from repro.sim.engine import Engine
from repro.sim.units import seconds


def build_shard(
    engine,
    shard_id,
    seed=None,
    hosts=2,
    resilience=None,
):
    """One gateway shard with the chaos-study workloads registered."""
    cluster = FaaSCluster(
        hosts=hosts,
        seed=100 + shard_id if seed is None else seed,
        engine=engine,
    )
    firewall, background = _build_workloads("horse")
    cluster.register(FunctionSpec("firewall", firewall, memory_mb=128))
    cluster.register(FunctionSpec("background", background, memory_mb=256))
    cluster.provision_warm("firewall", per_host=2)
    cluster.provision_warm("background", per_host=2)
    if resilience is None:
        resilience = ResilienceConfig(
            default_deadline_ns=seconds(30),
            admission=AdmissionConfig(capacity=4096, reserved_slots=8),
        )
    return GatewayShard(
        shard_id, cluster, resilience, seed=100 + shard_id if seed is None else seed
    )


def build_plane(engine, shards=3, hosts=2):
    return ControlPlane(
        engine, [build_shard(engine, i, hosts=hosts) for i in range(shards)]
    )


@pytest.fixture
def engine():
    return Engine()
