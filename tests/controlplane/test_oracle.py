"""The exactly-once differential oracle, exercised as a property.

The acceptance bar for the crash-recoverable control plane: across
randomly generated ``(seed, gateway-failure-rate, gateways, hosts)``
tuples — with host failures off, so every invocation has a well-defined
terminal outcome — the chaos run's terminal-outcome map must be
*identical* to a zero-gateway-failure twin of the same seed, and every
intent-log invariant (no loss, no duplicates, fence monotonicity, no
cross-epoch completion) must hold on every run.  ≥200 generated cases
across the two properties below.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane.checks import terminal_outcomes
from repro.experiments.cluster_recovery import (
    ClusterRecoveryConfig,
    run_recovery,
)


def _small(seed, rate, gateways, hosts, requests=25):
    return ClusterRecoveryConfig(
        groups=1,
        gateways=gateways,
        hosts=hosts,
        gateway_failure_rate=rate,
        failure_rate=0.0,
        requests=requests,
        drain_s=10.0,
        deadline_s=5.0,
        seed=seed,
    )


class TestExactlyOnceOracle:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rate=st.sampled_from([0.1, 0.2, 0.4, 0.8]),
        gateways=st.integers(min_value=1, max_value=4),
        hosts=st.integers(min_value=2, max_value=3),
    )
    @settings(max_examples=150, deadline=None)
    def test_chaos_outcomes_identical_to_zero_failure_twin(
        self, seed, rate, gateways, hosts
    ):
        result = run_recovery(_small(seed, rate, gateways, hosts), shards=1)
        assert result.oracle_strict
        assert result.oracle_mismatches == []
        assert result.violations == []
        # Every submitted request reached a terminal outcome.
        for cell in result.cells.values():
            assert len(cell.outcomes) == cell.submitted

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.sampled_from([0.3, 0.6]),
        gateways=st.integers(min_value=2, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_oracle_holds_under_aggressive_crash_cadence(
        self, seed, rate, gateways
    ):
        """Short MTBF: several crash/recover cycles inside one run."""
        config = ClusterRecoveryConfig(
            groups=1,
            gateways=gateways,
            hosts=2,
            gateway_failure_rate=rate,
            failure_rate=0.0,
            requests=40,
            drain_s=10.0,
            deadline_s=5.0,
            gw_mtbf_base_s=0.1,
            gw_recovery_ms=200.0,
            seed=seed,
        )
        result = run_recovery(config, shards=1)
        assert result.ok
        assert result.oracle_mismatches == []


class TestOracleDiagnostics:
    def test_terminal_outcome_map_matches_cell_report(self):
        result = run_recovery(_small(3, 0.4, 3, 2, requests=40), shards=1)
        cell = result.cells[0]
        assert set(cell.outcomes) == set(range(cell.submitted))
        assert (
            sum(1 for state in cell.outcomes.values() if state == "completed")
            == cell.completed
        )

    def test_strictness_waived_when_host_failures_enabled(self):
        """With host crashes on, retry nondeterminism across gateway
        epochs makes strict identity meaningless — the oracle downgrades
        to invariant checking instead of reporting phantom divergences."""
        config = ClusterRecoveryConfig(
            groups=1,
            gateways=2,
            hosts=2,
            gateway_failure_rate=0.3,
            failure_rate=0.2,
            requests=30,
            drain_s=10.0,
            deadline_s=5.0,
            seed=7,
        )
        result = run_recovery(config, shards=1)
        assert not result.oracle_strict
        assert result.oracle_mismatches == []
        # Invariants are never waived.
        for cell in result.cells.values():
            assert cell.violations == []
