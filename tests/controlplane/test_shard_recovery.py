"""Gateway-shard crash/recovery: fencing, replay, conservative rebuild."""

import pytest

from repro.controlplane import RecoveryConfig, intent_log_violations
from repro.resilience import BreakerState, RequestState
from repro.sim.units import milliseconds

from tests.controlplane.conftest import build_shard


class TestJournalling:
    def test_admit_launch_outcome_journaled(self, engine):
        shard = build_shard(engine, 0)
        shard.submit("firewall", priority=1, origin=42)
        engine.run()
        assert shard.log.admitted(42) is not None
        kinds = [r.kind for r in shard.log.records if r.origin == 42]
        assert kinds[0] == "admit" and kinds[-1] == "outcome"
        assert shard.log.outcome_of(42).state == "completed"
        assert intent_log_violations(shard, final=True) == []

    def test_fences_strictly_increase(self, engine):
        shard = build_shard(engine, 0)
        for origin in range(8):
            engine.schedule_at(
                origin * milliseconds(1),
                lambda o=origin: shard.submit("firewall", origin=o),
                label=f"sub{origin}",
            )
        engine.run()
        fences = [r.fence for r in shard.log.records if r.kind == "launch"]
        assert len(fences) >= 8
        assert fences == sorted(fences) and len(set(fences)) == len(fences)


class TestCrash:
    def test_crash_fences_the_live_incarnation(self, engine):
        shard = build_shard(engine, 0)
        old_gateway = shard.gateway
        assert shard.crash(engine.now) is True
        assert shard.down and old_gateway.fenced
        # Idempotent: a second crash of a down shard is a no-op.
        assert shard.crash(engine.now) is False
        assert shard.crashes == 1

    def test_stale_completion_is_dropped_not_applied(self, engine):
        shard = build_shard(engine, 0)
        # background runs for ~100 ms; crash mid-flight, recover, and
        # let the pre-crash attempt's completion land on the fenced
        # incarnation.
        shard.submit("background", origin=7)
        engine.schedule_at(
            milliseconds(1), lambda: shard.crash(engine.now), label="crash"
        )
        engine.schedule_at(
            milliseconds(5), lambda: shard.recover(engine.now), label="recover"
        )
        engine.run()
        assert shard.fenced_completions == 1
        assert shard.redispatched == 1
        assert shard.log.outcome_of(7).state == "completed"
        # Exactly one outcome for the origin despite two attempts.
        outcomes = [r for r in shard.log.records
                    if r.kind == "outcome" and r.origin == 7]
        assert len(outcomes) == 1
        assert intent_log_violations(shard, final=True) == []


class TestRecovery:
    def test_recovery_redispatches_open_admits_only(self, engine):
        shard = build_shard(engine, 0)
        shard.submit("firewall", origin=1)
        engine.run()                      # origin 1 resolves
        shard.submit("background", origin=2)   # stays in flight
        shard.crash(engine.now)
        count = shard.recover(engine.now)
        assert count == 1 and shard.redispatched == 1
        engine.run()
        assert shard.log.outcome_of(2).state == "completed"
        assert intent_log_violations(shard, final=True) == []

    def test_epoch_bumps_and_fence_counter_survives(self, engine):
        shard = build_shard(engine, 0)
        shard.submit("firewall", origin=1)
        engine.run()
        fences_before = max(
            r.fence for r in shard.log.records if r.kind == "launch"
        )
        shard.crash(engine.now)
        shard.recover(engine.now)
        assert shard.epoch == 1
        shard.submit("firewall", origin=2)
        engine.run()
        new_fences = [
            r.fence for r in shard.log.records
            if r.kind == "launch" and r.epoch == 1
        ]
        assert new_fences and min(new_fences) > fences_before

    def test_breakers_reopen_conservatively(self, engine):
        shard = build_shard(engine, 0)
        shard.submit("firewall", origin=1)
        engine.run()
        shard.crash(engine.now)
        shard.recover(engine.now)
        for breaker in shard.gateway.breakers.values():
            assert breaker.state is BreakerState.OPEN
        # Health rediscovery: half-open probes re-close the breakers
        # and traffic completes.
        shard.submit("firewall", origin=2)
        engine.run()
        assert shard.log.outcome_of(2).state == "completed"

    def test_reopen_can_be_disabled(self, engine):
        shard = build_shard(engine, 0)
        shard.recovery = RecoveryConfig(reopen_breakers=False)
        shard.crash(engine.now)
        shard.recover(engine.now)
        for breaker in shard.gateway.breakers.values():
            assert breaker.state is BreakerState.CLOSED

    def test_recover_when_up_is_noop(self, engine):
        shard = build_shard(engine, 0)
        assert shard.recover(engine.now) == 0
        assert shard.epoch == 0 and shard.recoveries == 0

    def test_restored_request_keeps_original_submit_and_deadline(self, engine):
        shard = build_shard(engine, 0)
        shard.submit("background", origin=3)
        original = shard.gateway.requests[0]
        submit_ns, deadline_ns = original.submit_ns, original.deadline_ns
        engine.schedule_at(
            milliseconds(1), lambda: shard.crash(engine.now), label="crash"
        )
        engine.schedule_at(
            milliseconds(5), lambda: shard.recover(engine.now), label="recover"
        )
        engine.run()
        restored = shard.gateway.requests[0]
        assert restored.origin == 3
        assert restored.submit_ns == submit_ns
        assert restored.deadline_ns == deadline_ns
        assert restored.state is RequestState.COMPLETED
        # Latency in the log is measured from the ORIGINAL arrival.
        assert shard.log.outcome_of(3).latency_ns == (
            restored.completed_ns - submit_ns
        )

    def test_submit_to_down_shard_is_a_routing_bug(self, engine):
        shard = build_shard(engine, 0)
        shard.crash(engine.now)
        with pytest.raises(RuntimeError, match="down"):
            shard.submit("firewall", origin=1)
