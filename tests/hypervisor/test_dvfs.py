"""DVFS governor behavior."""

import pytest

from repro.hypervisor.dvfs import DvfsGovernor, FrequencyRange, GovernorMode


class TestFrequencyRange:
    def test_valid_range(self):
        fr = FrequencyRange(800_000, 2_400_000)
        assert fr.min_khz == 800_000

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            FrequencyRange(2_000_000, 1_000_000)

    def test_nonpositive_min_rejected(self):
        with pytest.raises(ValueError):
            FrequencyRange(0, 100)

    def test_clamp(self):
        fr = FrequencyRange(1000, 2000)
        assert fr.clamp(500) == 1000
        assert fr.clamp(3000) == 2000
        assert fr.clamp(1500) == 1500


class TestGovernor:
    def test_performance_always_max(self):
        governor = DvfsGovernor(mode=GovernorMode.PERFORMANCE)
        assert governor.target_khz(0.0) == governor.frequency.max_khz
        assert governor.target_khz(1e9) == governor.frequency.max_khz

    def test_powersave_always_min(self):
        governor = DvfsGovernor(mode=GovernorMode.POWERSAVE)
        assert governor.target_khz(1e9) == governor.frequency.min_khz

    def test_ondemand_zero_load_min(self):
        governor = DvfsGovernor(mode=GovernorMode.ONDEMAND)
        assert governor.target_khz(0.0) == governor.frequency.min_khz

    def test_ondemand_full_load_max(self):
        governor = DvfsGovernor(mode=GovernorMode.ONDEMAND, capacity=1024.0)
        assert governor.target_khz(1024.0) == governor.frequency.max_khz

    def test_ondemand_half_load_midpoint(self):
        governor = DvfsGovernor(
            mode=GovernorMode.ONDEMAND,
            frequency=FrequencyRange(1000, 3000),
            capacity=100.0,
        )
        assert governor.target_khz(50.0) == 2000

    def test_ondemand_monotone_in_load(self):
        governor = DvfsGovernor(mode=GovernorMode.ONDEMAND)
        freqs = [governor.target_khz(load) for load in (0, 200, 400, 800, 1024)]
        assert freqs == sorted(freqs)

    def test_overload_clamped(self):
        governor = DvfsGovernor(mode=GovernorMode.ONDEMAND, capacity=10.0)
        assert governor.target_khz(1e6) == governor.frequency.max_khz

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            DvfsGovernor(capacity=0.0)

    def test_decisions_counted(self):
        governor = DvfsGovernor()
        governor.target_khz(1.0)
        governor.target_khz(2.0)
        assert governor.decisions == 2
