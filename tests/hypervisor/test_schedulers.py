"""Scheduler policies: credit2 and CFS ordering semantics."""

import pytest

from repro.hypervisor.runqueue import RunQueue
from repro.hypervisor.scheduler.cfs import CfsPolicy
from repro.hypervisor.scheduler.credit2 import (
    CREDIT_INITIAL,
    Credit2Policy,
)
from repro.hypervisor.vcpu import Vcpu
from repro.sim.units import microseconds, milliseconds


def make_vcpu(credit=0.0, vruntime=0.0, weight=1024.0):
    vcpu = Vcpu(index=0, sandbox_id="sb")
    vcpu.credit = credit
    vcpu.vruntime = vruntime
    vcpu.weight = weight
    return vcpu


class TestCredit2:
    def test_higher_credit_sorts_first(self):
        """Paper: queues sorted so the least-*spent* (most remaining
        credit) entity runs first."""
        policy = Credit2Policy()
        rich = make_vcpu(credit=5000.0)
        poor = make_vcpu(credit=100.0)
        assert policy.sort_key(rich) < policy.sort_key(poor)

    def test_on_enqueue_refills_exhausted_credit(self):
        policy = Credit2Policy()
        vcpu = make_vcpu(credit=0.0)
        policy.on_enqueue(vcpu)
        assert vcpu.credit == CREDIT_INITIAL

    def test_on_enqueue_keeps_positive_credit(self):
        policy = Credit2Policy()
        vcpu = make_vcpu(credit=777.0)
        policy.on_enqueue(vcpu)
        assert vcpu.credit == 777.0

    def test_charge_burns_credit(self):
        policy = Credit2Policy()
        vcpu = make_vcpu(credit=1000.0)
        policy.charge(vcpu, milliseconds(1))
        assert vcpu.credit < 1000.0

    def test_charge_negative_rejected(self):
        with pytest.raises(ValueError):
            Credit2Policy().charge(make_vcpu(), -1)

    def test_heavier_weight_burns_slower(self):
        policy = Credit2Policy()
        light = make_vcpu(credit=1000.0, weight=512.0)
        heavy = make_vcpu(credit=1000.0, weight=2048.0)
        policy.charge(light, milliseconds(1))
        policy.charge(heavy, milliseconds(1))
        assert heavy.credit > light.credit

    def test_default_timeslice_positive(self):
        assert Credit2Policy().default_timeslice_ns() > 0

    def test_bad_timeslice_rejected(self):
        with pytest.raises(ValueError):
            Credit2Policy(timeslice_ns=0)


class TestCfs:
    def test_lower_vruntime_sorts_first(self):
        policy = CfsPolicy()
        fresh = make_vcpu(vruntime=10.0)
        hog = make_vcpu(vruntime=1000.0)
        assert policy.sort_key(fresh) < policy.sort_key(hog)

    def test_charge_accumulates_vruntime(self):
        policy = CfsPolicy()
        vcpu = make_vcpu()
        policy.charge(vcpu, 1000)
        assert vcpu.vruntime == pytest.approx(1000.0)

    def test_heavier_weight_accumulates_slower(self):
        policy = CfsPolicy()
        light = make_vcpu(weight=512.0)
        heavy = make_vcpu(weight=2048.0)
        policy.charge(light, 1000)
        policy.charge(heavy, 1000)
        assert heavy.vruntime < light.vruntime

    def test_on_enqueue_lifts_laggard_to_min_vruntime(self):
        policy = CfsPolicy()
        runner = make_vcpu()
        policy.charge(runner, 10_000_000_000)  # drives min_vruntime up
        sleeper = make_vcpu(vruntime=0.0)
        policy.on_enqueue(sleeper)
        assert sleeper.vruntime > 0.0

    def test_charge_negative_rejected(self):
        with pytest.raises(ValueError):
            CfsPolicy().charge(make_vcpu(), -5)

    def test_policy_names(self):
        assert CfsPolicy().name == "cfs"
        assert Credit2Policy().name == "credit2"


class TestPolicyDrivenQueueIntegrity:
    """Rotate a live run queue under each policy, asserting integrity
    (sortedness, size, links) after every simulated quantum."""

    @pytest.mark.parametrize(
        "policy", [CfsPolicy(), Credit2Policy()], ids=["cfs", "credit2"]
    )
    def test_rotation_keeps_queue_sorted_every_quantum(self, policy):
        queue = RunQueue(
            runqueue_id=0, core_id=0, sort_key=policy.sort_key,
            timeslice_ns=policy.default_timeslice_ns(),
        )
        for index in range(6):
            vcpu = Vcpu(index=index, sandbox_id=f"sb-{index}")
            vcpu.weight = 512.0 * (1 + index % 3)
            policy.on_enqueue(vcpu)
            queue.enqueue_sorted(vcpu, 0)
        queue.check_invariants()

        now = 0
        for quantum in range(40):
            now += policy.default_timeslice_ns()
            head = queue.peek_next()
            assert head is not None
            queue.dequeue(head, now)
            policy.charge(head, policy.default_timeslice_ns())
            policy.on_enqueue(head)
            queue.enqueue_sorted(head, now)
            queue.check_invariants()
        assert len(queue) == 6

    def test_mixed_wakeups_and_departures_stay_sound(self):
        policy = CfsPolicy(timeslice_ns=microseconds(500))
        queue = RunQueue(
            runqueue_id=0, core_id=0, sort_key=policy.sort_key,
            timeslice_ns=policy.default_timeslice_ns(),
        )
        parked = []
        for index in range(8):
            vcpu = Vcpu(index=index, sandbox_id=f"sb-{index}")
            policy.on_enqueue(vcpu)
            queue.enqueue_sorted(vcpu, 0)
        queue.check_invariants()
        now = 0
        for step in range(60):
            now += policy.default_timeslice_ns()
            if step % 3 == 2 and parked:
                returning = parked.pop()
                policy.on_enqueue(returning)
                queue.enqueue_sorted(returning, now)
            else:
                head = queue.peek_next()
                if head is None:
                    continue
                queue.dequeue(head, now)
                policy.charge(head, policy.default_timeslice_ns())
                if step % 4 == 3:
                    parked.append(head)  # sleeps off-queue for a while
                else:
                    policy.on_enqueue(head)
                    queue.enqueue_sorted(head, now)
            queue.check_invariants()
        assert len(queue) + len(parked) == 8
