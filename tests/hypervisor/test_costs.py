"""Cost model: derived values and the paper's calibration anchors."""

import pytest

from repro.hypervisor.costs import (
    CostModel,
    FIRECRACKER_COSTS,
    XEN_COSTS,
    cost_model_for,
)
from repro.sim.units import microseconds, seconds


class TestDerivedCosts:
    def test_resume_fixed_sum(self):
        costs = FIRECRACKER_COSTS
        assert costs.resume_fixed_ns == (
            costs.resume_parse_ns
            + costs.resume_lock_ns
            + costs.resume_sanity_ns
            + costs.resume_finalize_ns
        )

    def test_cold_start_is_about_1_5s(self):
        assert FIRECRACKER_COSTS.cold_start_ns == pytest.approx(
            seconds(1.5), rel=0.05
        )

    def test_restore_is_about_1300us(self):
        assert FIRECRACKER_COSTS.restore_ns == pytest.approx(
            microseconds(1300), rel=0.05
        )

    def test_vanilla_1vcpu_resume_is_about_1_1us(self):
        costs = FIRECRACKER_COSTS
        total = (
            costs.resume_fixed_ns
            + costs.merge_cost_ns(1, 0)
            + costs.load_update_cost_ns(1)
        )
        assert total == pytest.approx(1100, rel=0.05)

    def test_horse_resume_is_under_200ns(self):
        costs = FIRECRACKER_COSTS
        total = (
            costs.fast_fixed_ns
            + costs.p2sm_merge_cost_ns(4)
            + costs.coalesced_update_ns
        )
        assert total < 200


class TestMergeCost:
    def test_merge_cost_grows_with_vcpus(self):
        costs = FIRECRACKER_COSTS
        assert costs.merge_cost_ns(36, 0) > costs.merge_cost_ns(1, 0)

    def test_merge_cost_charges_scans(self):
        costs = FIRECRACKER_COSTS
        assert costs.merge_cost_ns(1, 100) > costs.merge_cost_ns(1, 0)

    def test_merge_cost_rejects_zero_vcpus(self):
        with pytest.raises(ValueError):
            FIRECRACKER_COSTS.merge_cost_ns(0, 0)

    def test_p2sm_cost_flat_in_threads(self):
        costs = FIRECRACKER_COSTS
        assert costs.p2sm_merge_cost_ns(1) == costs.p2sm_merge_cost_ns(36)

    def test_p2sm_cost_rejects_negative(self):
        with pytest.raises(ValueError):
            FIRECRACKER_COSTS.p2sm_merge_cost_ns(-1)

    def test_load_update_cost_rejects_zero(self):
        with pytest.raises(ValueError):
            FIRECRACKER_COSTS.load_update_cost_ns(0)


class TestMemoryModel:
    def test_528kb_anchor_for_10_sandboxes_36_vcpus(self):
        """Paper §5.2: ~528 KB for the 10 paused uLL sandboxes."""
        total = 10 * FIRECRACKER_COSTS.horse_memory_bytes(36)
        assert total == pytest.approx(528_000, rel=0.02)

    def test_memory_rejects_negative_vcpus(self):
        with pytest.raises(ValueError):
            FIRECRACKER_COSTS.horse_memory_bytes(-1)


class TestPresets:
    def test_lookup_by_name(self):
        assert cost_model_for("firecracker") is FIRECRACKER_COSTS
        assert cost_model_for("XEN") is XEN_COSTS

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            cost_model_for("vmware")

    def test_xen_is_heavier_than_firecracker(self):
        assert XEN_COSTS.merge_first_vcpu_ns > FIRECRACKER_COSTS.merge_first_vcpu_ns

    def test_models_are_frozen(self):
        with pytest.raises(Exception):
            FIRECRACKER_COSTS.resume_parse_ns = 1.0
