"""Host model: topology, reserved queues, memory accounting."""

import pytest

from repro.hypervisor.cpu import CLOUDLAB_R650, Host, HostSpec
from repro.sim.units import microseconds, milliseconds


def make_host(reserved=1, **overrides):
    spec_kwargs = dict(
        name="t",
        sockets=2,
        cores_per_socket=4,
        base_khz=2_000_000,
        max_khz=3_000_000,
        memory_mb=16 * 1024,
    )
    spec_kwargs.update(overrides)
    return Host(
        spec=HostSpec(**spec_kwargs),
        sort_key=lambda v: v.vruntime,
        default_timeslice_ns=milliseconds(5),
        ull_timeslice_ns=microseconds(1),
        reserved_ull_cores=reserved,
    )


class TestHostSpec:
    def test_cloudlab_r650_matches_paper(self):
        assert CLOUDLAB_R650.sockets == 2
        assert CLOUDLAB_R650.cores_per_socket == 36
        assert CLOUDLAB_R650.total_cores == 72
        assert CLOUDLAB_R650.memory_mb == 128 * 1024
        assert not CLOUDLAB_R650.hyperthreading

    def test_hyperthreading_doubles_cores(self):
        spec = HostSpec("t", 1, 4, 1_000_000, 2_000_000, 1024, hyperthreading=True)
        assert spec.total_cores == 8

    def test_bad_topology_rejected(self):
        with pytest.raises(ValueError):
            HostSpec("t", 0, 4, 1_000_000, 2_000_000, 1024)

    def test_bad_memory_rejected(self):
        with pytest.raises(ValueError):
            HostSpec("t", 1, 4, 1_000_000, 2_000_000, 0)


class TestTopology:
    def test_one_runqueue_per_core(self):
        host = make_host()
        assert len(host.runqueues) == host.spec.total_cores

    def test_reserved_queues_are_last_cores(self):
        host = make_host(reserved=2)
        ull_ids = sorted(q.runqueue_id for q in host.ull_runqueues())
        assert ull_ids == [6, 7]

    def test_general_plus_ull_partition(self):
        host = make_host(reserved=3)
        assert len(host.general_runqueues()) + len(host.ull_runqueues()) == 8

    def test_cannot_reserve_all_cores(self):
        with pytest.raises(ValueError):
            make_host(reserved=8)

    def test_negative_reservation_rejected(self):
        with pytest.raises(ValueError):
            make_host(reserved=-1)

    def test_socket_assignment(self):
        host = make_host()
        assert host.cores[0].socket == 0
        assert host.cores[7].socket == 1


class TestPlacement:
    def test_least_loaded_prefers_lower_load(self):
        host = make_host()
        target = host.general_runqueues()[3]
        for queue in host.general_runqueues():
            if queue is not target:
                queue.load.value = 100.0
        assert host.least_loaded_general() is target

    def test_least_loaded_ties_break_by_id(self):
        host = make_host()
        assert host.least_loaded_general().runqueue_id == 0

    def test_refresh_frequencies_queries_governor(self):
        host = make_host()
        host.refresh_frequencies()
        assert host.governor.decisions == host.spec.total_cores


class TestMemory:
    def test_allocate_and_release(self):
        host = make_host()
        host.allocate_memory(1024)
        assert host.memory_used_mb == 1024
        host.release_memory(1024)
        assert host.memory_used_mb == 0

    def test_overallocation_raises(self):
        host = make_host()
        with pytest.raises(MemoryError):
            host.allocate_memory(host.spec.memory_mb + 1)

    def test_over_release_raises(self):
        host = make_host()
        with pytest.raises(ValueError):
            host.release_memory(1)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            make_host().allocate_memory(-1)


class TestEdgeNodePreset:
    def test_edge_node_shape(self):
        from repro.hypervisor.cpu import EDGE_NODE

        assert EDGE_NODE.total_cores == 8
        assert EDGE_NODE.memory_mb == 32 * 1024

    def test_platform_on_edge_node_end_to_end(self):
        from repro.core import HorsePauseResume
        from repro.hypervisor.cpu import EDGE_NODE
        from repro.hypervisor.platform import firecracker_platform
        from repro.hypervisor.sandbox import Sandbox

        virt = firecracker_platform(spec=EDGE_NODE)
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        sandbox = Sandbox(vcpus=4, memory_mb=512, is_ull=True)
        virt.vanilla.place_initial(sandbox, 0)
        horse.pause(sandbox, 0)
        result = horse.resume(sandbox, 0)
        assert result.total_ns < 200  # fast path works on small hosts
