"""Control plane: command parsing (step 1) and routing."""

import pytest

from repro.core.hot_resume import HorsePauseResume
from repro.hypervisor.control import (
    Action,
    Command,
    CommandError,
    ControlPlane,
    UnknownSandboxError,
)
from repro.hypervisor.platform import firecracker_platform
from repro.hypervisor.sandbox import Sandbox


def make_control(with_horse=True):
    virt = firecracker_platform()
    horse = (
        HorsePauseResume(virt.host, virt.policy, virt.costs)
        if with_horse
        else None
    )
    control = ControlPlane(virt.vanilla, horse)
    sandbox = Sandbox(vcpus=2, memory_mb=256, is_ull=True)
    virt.vanilla.place_initial(sandbox, 0)
    control.attach(sandbox)
    return virt, control, sandbox


class TestCommandParse:
    def test_valid_resume(self):
        command = Command.parse({"action": "resume", "sandbox_id": "sb-1"})
        assert command.action is Action.RESUME
        assert command.sandbox_id == "sb-1"
        assert command.fast_path is False

    def test_fast_path_flag(self):
        command = Command.parse(
            {"action": "resume", "sandbox_id": "sb-1", "fast_path": True}
        )
        assert command.fast_path

    def test_action_case_insensitive(self):
        assert Command.parse(
            {"action": "PAUSE", "sandbox_id": "x"}
        ).action is Action.PAUSE

    @pytest.mark.parametrize(
        "request_body",
        [
            {},                                          # nothing
            {"action": "resume"},                        # no sandbox
            {"action": "resume", "sandbox_id": ""},      # empty id
            {"action": "reboot", "sandbox_id": "x"},     # unknown action
            {"action": 7, "sandbox_id": "x"},            # non-string action
            {"action": "resume", "sandbox_id": "x", "extra": 1},  # unknown field
            {"action": "resume", "sandbox_id": "x", "fast_path": "yes"},
        ],
        ids=["empty", "no-id", "empty-id", "bad-action", "non-string",
             "unknown-field", "bad-fastpath"],
    )
    def test_malformed_requests_rejected(self, request_body):
        with pytest.raises(CommandError):
            Command.parse(request_body)

    def test_non_mapping_rejected(self):
        with pytest.raises(CommandError):
            Command.parse("resume sb-1")


class TestRouting:
    def test_pause_then_resume_cycle(self):
        _, control, sandbox = make_control()
        pause = control.handle(
            {"action": "pause", "sandbox_id": sandbox.sandbox_id}, 0
        )
        assert pause.ok and pause.state == "paused"
        resume = control.handle(
            {"action": "resume", "sandbox_id": sandbox.sandbox_id}, 0
        )
        assert resume.ok and resume.state == "running"
        assert resume.result.total_ns > 500  # vanilla path

    def test_fast_path_resume_uses_horse(self):
        _, control, sandbox = make_control()
        control.handle(
            {"action": "pause", "sandbox_id": sandbox.sandbox_id,
             "fast_path": True}, 0,
        )
        response = control.handle(
            {"action": "resume", "sandbox_id": sandbox.sandbox_id,
             "fast_path": True}, 0,
        )
        assert response.ok
        assert response.result.total_ns < 200  # HORSE path

    def test_fast_path_without_horse_rejected(self):
        _, control, sandbox = make_control(with_horse=False)
        control.handle({"action": "pause", "sandbox_id": sandbox.sandbox_id}, 0)
        with pytest.raises(CommandError, match="no HORSE path"):
            control.handle(
                {"action": "resume", "sandbox_id": sandbox.sandbox_id,
                 "fast_path": True}, 0,
            )

    def test_unknown_sandbox_404(self):
        _, control, _ = make_control()
        with pytest.raises(UnknownSandboxError):
            control.handle({"action": "resume", "sandbox_id": "ghost"}, 0)

    def test_status_reports_state(self):
        _, control, sandbox = make_control()
        response = control.handle(
            {"action": "status", "sandbox_id": sandbox.sandbox_id}, 0
        )
        assert response.ok and response.state == "running"

    def test_state_conflict_is_soft_failure(self):
        """Resuming a running sandbox fails the sanity check (step 3)
        but is a well-formed request: ok=False, no exception."""
        _, control, sandbox = make_control()
        response = control.handle(
            {"action": "resume", "sandbox_id": sandbox.sandbox_id}, 0
        )
        assert not response.ok
        assert "paused" in response.detail

    def test_counters(self):
        _, control, sandbox = make_control()
        control.handle({"action": "status", "sandbox_id": sandbox.sandbox_id}, 0)
        with pytest.raises(CommandError):
            control.handle({"action": "bad"}, 0)
        assert control.requests_served == 1
        assert control.requests_rejected == 1


class TestAttachment:
    def test_double_attach_rejected(self):
        _, control, sandbox = make_control()
        with pytest.raises(CommandError):
            control.attach(sandbox)

    def test_detach(self):
        _, control, sandbox = make_control()
        control.detach(sandbox.sandbox_id)
        assert control.managed() == []
        with pytest.raises(UnknownSandboxError):
            control.detach(sandbox.sandbox_id)
