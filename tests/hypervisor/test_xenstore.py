"""In-memory XenStore: paths, subtree semantics, watches."""

import pytest

from repro.hypervisor.xenstore import InMemoryXenStore, XenstoreLifecycleMirror


@pytest.fixture
def store():
    return InMemoryXenStore()


class TestReadWrite:
    def test_roundtrip(self, store):
        store.write("/vm/1/state", "running")
        assert store.read("/vm/1/state") == "running"

    def test_overwrite(self, store):
        store.write("/k", "a")
        store.write("/k", "b")
        assert store.read("/k") == "b"

    def test_read_missing_raises(self, store):
        with pytest.raises(KeyError):
            store.read("/nope")

    def test_directory_without_value_not_readable(self, store):
        store.write("/vm/1/state", "running")
        with pytest.raises(KeyError):
            store.read("/vm/1")  # exists as a directory, holds no value

    def test_exists(self, store):
        store.write("/a/b", "1")
        assert store.exists("/a")
        assert store.exists("/a/b")
        assert not store.exists("/a/c")

    def test_relative_path_rejected(self, store):
        with pytest.raises(ValueError):
            store.write("vm/1", "x")

    def test_whitespace_component_rejected(self, store):
        with pytest.raises(ValueError):
            store.write("/bad path", "x")

    def test_root_write_rejected(self, store):
        with pytest.raises(ValueError):
            store.write("/", "x")


class TestListDelete:
    def test_list_children_sorted(self, store):
        store.write("/vm/b/state", "x")
        store.write("/vm/a/state", "y")
        assert store.list("/vm") == ["a", "b"]

    def test_list_missing_raises(self, store):
        with pytest.raises(KeyError):
            store.list("/ghost")

    def test_delete_subtree(self, store):
        store.write("/vm/1/state", "running")
        store.write("/vm/1/vcpus", "4")
        assert store.delete("/vm/1") is True
        assert not store.exists("/vm/1")
        assert store.exists("/vm")

    def test_delete_missing_returns_false(self, store):
        assert store.delete("/ghost") is False


class TestWatches:
    def test_watch_fires_on_write_below_path(self, store):
        events = []
        store.watch("/vm", lambda path, value: events.append((path, value)))
        store.write("/vm/1/state", "paused")
        assert events == [("/vm/1/state", "paused")]

    def test_watch_does_not_fire_elsewhere(self, store):
        events = []
        store.watch("/vm/1", lambda path, value: events.append(path))
        store.write("/vm/2/state", "running")
        assert events == []

    def test_watch_fires_on_delete_with_none(self, store):
        events = []
        store.write("/vm/1/state", "running")
        store.watch("/vm", lambda path, value: events.append((path, value)))
        store.delete("/vm/1")
        assert events == [("/vm/1", None)]

    def test_unwatch(self, store):
        events = []
        unwatch = store.watch("/vm", lambda path, value: events.append(path))
        unwatch()
        store.write("/vm/1/state", "running")
        assert events == []
        unwatch()  # idempotent

    def test_exact_path_watch(self, store):
        events = []
        store.watch("/vm/1/state", lambda path, value: events.append(value))
        store.write("/vm/1/state", "paused")
        store.write("/vm/1/vcpus", "2")
        assert events == ["paused"]


class TestLifecycleMirror:
    def test_records_and_reads_state(self, store):
        mirror = XenstoreLifecycleMirror(store)
        mirror.record_state("sb-1", "running")
        assert mirror.state_of("sb-1") == "running"

    def test_known_vms(self, store):
        mirror = XenstoreLifecycleMirror(store)
        assert mirror.known_vms() == []
        mirror.record_state("sb-2", "paused")
        mirror.record_state("sb-1", "running")
        assert mirror.known_vms() == ["sb-1", "sb-2"]

    def test_remove(self, store):
        mirror = XenstoreLifecycleMirror(store)
        mirror.record_state("sb-1", "running")
        mirror.remove("sb-1")
        assert mirror.known_vms() == []

    def test_toolstack_watch_sees_lifecycle(self, store):
        """The coordination pattern toolstacks use: watch /vm, react to
        state transitions."""
        mirror = XenstoreLifecycleMirror(store)
        transitions = []
        store.watch("/vm", lambda path, value: transitions.append((path, value)))
        mirror.record_state("sb-1", "running")
        mirror.record_state("sb-1", "paused")
        assert transitions == [
            ("/vm/sb-1/state", "running"),
            ("/vm/sb-1/state", "paused"),
        ]


class TestSandboxAttachment:
    def test_attached_sandbox_mirrors_lifecycle(self, store):
        from repro.hypervisor.platform import xen_platform
        from repro.hypervisor.sandbox import Sandbox

        virt = xen_platform()
        mirror = XenstoreLifecycleMirror(store)
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        mirror.attach(sandbox)
        assert mirror.state_of(sandbox.sandbox_id) == "creating"
        virt.vanilla.place_initial(sandbox, 0)
        assert mirror.state_of(sandbox.sandbox_id) == "running"
        virt.vanilla.pause(sandbox, 0)
        assert mirror.state_of(sandbox.sandbox_id) == "paused"
        virt.vanilla.resume(sandbox, 0)
        assert mirror.state_of(sandbox.sandbox_id) == "running"

    def test_watch_sees_resume_transition_sequence(self, store):
        from repro.hypervisor.platform import xen_platform
        from repro.hypervisor.sandbox import Sandbox

        virt = xen_platform()
        mirror = XenstoreLifecycleMirror(store)
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        mirror.attach(sandbox)
        virt.vanilla.place_initial(sandbox, 0)
        virt.vanilla.pause(sandbox, 0)
        states = []
        store.watch(
            f"/vm/{sandbox.sandbox_id}/state",
            lambda path, value: states.append(value),
        )
        virt.vanilla.resume(sandbox, 0)
        assert states == ["resuming", "running"]
