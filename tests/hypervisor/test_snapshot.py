"""Snapshot store: capture, restore, timing."""

import pytest

from repro.hypervisor.platform import firecracker_platform
from repro.hypervisor.sandbox import Sandbox, SandboxState
from repro.sim.units import microseconds


def running_sandbox(virt, vcpus=2):
    sandbox = Sandbox(vcpus=vcpus, memory_mb=512)
    virt.vanilla.place_initial(sandbox, 0)
    return sandbox


class TestSnapshot:
    def test_snapshot_captures_shape(self):
        virt = firecracker_platform()
        sandbox = running_sandbox(virt, vcpus=3)
        image = virt.snapshots.snapshot("img", sandbox)
        assert image.vcpu_count == 3
        assert image.memory_mb == 512
        assert image.source_id == sandbox.sandbox_id

    def test_snapshot_requires_quiesced_state(self):
        virt = firecracker_platform()
        sandbox = Sandbox(vcpus=1, memory_mb=512)  # still CREATING
        with pytest.raises(Exception):
            virt.snapshots.snapshot("img", sandbox)

    def test_snapshot_of_paused_sandbox_allowed(self):
        virt = firecracker_platform()
        sandbox = running_sandbox(virt)
        virt.vanilla.pause(sandbox, 0)
        virt.snapshots.snapshot("img", sandbox)
        assert "img" in virt.snapshots

    def test_names_listed(self):
        virt = firecracker_platform()
        sandbox = running_sandbox(virt)
        virt.snapshots.snapshot("b", sandbox)
        virt.snapshots.snapshot("a", sandbox)
        assert virt.snapshots.names() == ["a", "b"]


class TestRestore:
    def test_restore_builds_equivalent_sandbox(self):
        virt = firecracker_platform()
        original = running_sandbox(virt, vcpus=4)
        original.vcpus[2].vruntime = 123.0
        virt.snapshots.snapshot("img", original)
        clone, duration = virt.snapshots.restore("img")
        assert clone.vcpu_count == 4
        assert clone.memory_mb == 512
        assert clone.vcpus[2].vruntime == 123.0
        assert clone.sandbox_id != original.sandbox_id
        assert clone.state is SandboxState.CREATING
        assert duration > 0

    def test_restore_cost_is_about_1300us(self):
        virt = firecracker_platform()
        virt.snapshots.snapshot("img", running_sandbox(virt))
        _, duration = virt.snapshots.restore("img")
        assert duration == pytest.approx(microseconds(1300), rel=0.05)

    def test_restore_unknown_name_raises(self):
        virt = firecracker_platform()
        with pytest.raises(KeyError):
            virt.snapshots.restore("nope")

    def test_restore_counts(self):
        virt = firecracker_platform()
        virt.snapshots.snapshot("img", running_sandbox(virt))
        virt.snapshots.restore("img")
        virt.snapshots.restore("img")
        assert virt.snapshots.restores == 2

    def test_restores_are_independent_sandboxes(self):
        virt = firecracker_platform()
        virt.snapshots.snapshot("img", running_sandbox(virt))
        a, _ = virt.snapshots.restore("img")
        b, _ = virt.snapshots.restore("img")
        assert a.sandbox_id != b.sandbox_id
        assert a.vcpus[0] is not b.vcpus[0]
