"""Guest memory and the lazy-restore model."""

import pytest

from repro.hypervisor.memory import (
    DEFAULT_WORKING_SET,
    GuestMemory,
    LazyRestoreModel,
    PAGE_BYTES,
    WorkingSet,
)
from repro.sim.units import microseconds


class TestGuestMemory:
    def test_page_count(self):
        memory = GuestMemory(size_mb=512)
        assert memory.total_pages == 512 * 1024 * 1024 // PAGE_BYTES

    def test_starts_fully_resident(self):
        memory = GuestMemory(size_mb=1)
        assert memory.resident_pages == memory.total_pages

    def test_evict_all(self):
        memory = GuestMemory(size_mb=1)
        memory.evict_all()
        assert memory.resident_pages == 0

    def test_touch_resident_page_no_fault(self):
        memory = GuestMemory(size_mb=1)
        assert memory.touch(0) is False
        assert memory.faults == 0

    def test_touch_cold_page_faults(self):
        memory = GuestMemory(size_mb=1)
        memory.evict_all()
        assert memory.touch(0) is True
        assert memory.faults == 1
        assert memory.touch(0) is False  # now resident

    def test_prefetch_counts_only_cold_pages(self):
        memory = GuestMemory(size_mb=1)
        memory.evict_all()
        assert memory.prefetch([0, 1, 2]) == 3
        assert memory.prefetch([2, 3]) == 1

    def test_out_of_range_page_rejected(self):
        memory = GuestMemory(size_mb=1)
        with pytest.raises(IndexError):
            memory.touch(memory.total_pages)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            GuestMemory(size_mb=0)


class TestWorkingSet:
    def test_contiguous(self):
        ws = WorkingSet.contiguous(10, 5)
        assert len(ws) == 5
        assert 14 in ws.pages and 15 not in ws.pages

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            WorkingSet.contiguous(-1, 5)


class TestLazyRestoreModel:
    def test_default_working_set_restores_in_1300us(self):
        """The mechanistic model must land on the paper's aggregate."""
        model = LazyRestoreModel()
        assert model.restore_ns(DEFAULT_WORKING_SET) == pytest.approx(
            microseconds(1300), rel=0.01
        )

    def test_restore_scales_with_working_set(self):
        model = LazyRestoreModel()
        small = model.restore_ns(WorkingSet.contiguous(0, 100))
        large = model.restore_ns(WorkingSet.contiguous(0, 10_000))
        assert small < large

    def test_empty_working_set_costs_base_only(self):
        model = LazyRestoreModel()
        assert model.restore_ns(WorkingSet(frozenset())) == model.base_ns

    def test_first_request_penalty_counts_cold_pages(self):
        model = LazyRestoreModel()
        memory = GuestMemory(size_mb=16)
        memory.evict_all()
        prefetched = WorkingSet.contiguous(0, 100)
        memory.prefetch(prefetched.pages)
        touched = WorkingSet.contiguous(50, 100)  # 50 warm, 50 cold
        penalty = model.first_request_penalty_ns(memory, touched)
        assert penalty == round(50 * model.demand_fault_ns)

    def test_perfect_prefetch_no_penalty(self):
        model = LazyRestoreModel()
        memory = GuestMemory(size_mb=16)
        memory.evict_all()
        memory.prefetch(DEFAULT_WORKING_SET.pages)
        assert model.first_request_penalty_ns(memory, DEFAULT_WORKING_SET) == 0

    def test_prefetch_vs_fault_tradeoff(self):
        """Prefetching a page is ~6x cheaper than demand-faulting it —
        the FaaSnap premise."""
        model = LazyRestoreModel()
        assert model.demand_fault_ns / model.prefetch_page_ns >= 5.0

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            LazyRestoreModel(base_ns=-1)
