"""RunQueue: sorted enqueue, load folds, invariants."""

import pytest

from repro.hypervisor.runqueue import RunQueue
from repro.hypervisor.vcpu import Vcpu, VcpuState
from repro.sim.units import microseconds, milliseconds


def make_queue(reserved=False):
    return RunQueue(
        runqueue_id=7,
        sort_key=lambda v: v.vruntime,
        core_id=7,
        timeslice_ns=microseconds(1) if reserved else milliseconds(5),
        reserved_for_ull=reserved,
    )


def make_vcpu(vruntime=0.0, index=0):
    vcpu = Vcpu(index=index, sandbox_id="sb-test")
    vcpu.vruntime = vruntime
    return vcpu


class TestEnqueue:
    def test_enqueue_marks_runnable_with_queue_id(self):
        queue = make_queue()
        vcpu = make_vcpu()
        queue.enqueue_sorted(vcpu, 0)
        assert vcpu.state is VcpuState.RUNNABLE
        assert vcpu.runqueue_id == 7

    def test_enqueue_keeps_sorted_order(self):
        queue = make_queue()
        for vruntime in (30.0, 10.0, 20.0):
            queue.enqueue_sorted(make_vcpu(vruntime), 0)
        assert [v.vruntime for v in queue.members()] == [10.0, 20.0, 30.0]

    def test_enqueue_updates_load(self):
        queue = make_queue()
        queue.enqueue_sorted(make_vcpu(), 0)
        assert queue.load.value > 0

    def test_enqueue_without_load_skips_fold(self):
        queue = make_queue()
        queue.enqueue_sorted_without_load(make_vcpu())
        assert queue.load.value == 0.0
        assert len(queue) == 1

    def test_enqueue_returns_scan_steps(self):
        queue = make_queue()
        assert queue.enqueue_sorted(make_vcpu(1.0), 0) == 0
        assert queue.enqueue_sorted(make_vcpu(2.0), 0) == 1

    def test_enqueue_count(self):
        queue = make_queue()
        queue.enqueue_sorted(make_vcpu(), 0)
        queue.enqueue_sorted_without_load(make_vcpu(index=1))
        assert queue.enqueue_count == 2


class TestDequeue:
    def test_dequeue_removes_and_marks_paused(self):
        queue = make_queue()
        vcpu = make_vcpu()
        queue.enqueue_sorted(vcpu, 0)
        assert queue.dequeue(vcpu, 0) is True
        assert len(queue) == 0
        assert vcpu.state is VcpuState.PAUSED
        assert vcpu.runqueue_id is None

    def test_dequeue_missing_returns_false(self):
        queue = make_queue()
        assert queue.dequeue(make_vcpu(), 0) is False

    def test_dequeue_folds_load_out(self):
        queue = make_queue()
        vcpu = make_vcpu()
        queue.enqueue_sorted(vcpu, 0)
        queue.dequeue(vcpu, 0)
        assert queue.load.value == pytest.approx(0.0, abs=1e-9)


class TestScheduling:
    def test_peek_next_is_least_key(self):
        queue = make_queue()
        queue.enqueue_sorted(make_vcpu(5.0), 0)
        queue.enqueue_sorted(make_vcpu(1.0, index=1), 0)
        assert queue.peek_next().vruntime == 1.0

    def test_pop_next_removes_head(self):
        queue = make_queue()
        queue.enqueue_sorted(make_vcpu(5.0), 0)
        queue.enqueue_sorted(make_vcpu(1.0, index=1), 0)
        assert queue.pop_next().vruntime == 1.0
        assert len(queue) == 1

    def test_reserved_queue_has_1us_timeslice(self):
        queue = make_queue(reserved=True)
        assert queue.timeslice_ns == microseconds(1)
        assert queue.reserved_for_ull


class TestInvariants:
    def test_check_invariants_passes_for_consistent_queue(self):
        queue = make_queue()
        for index, vruntime in enumerate((3.0, 1.0, 2.0)):
            queue.enqueue_sorted(make_vcpu(vruntime, index), 0)
        queue.check_invariants()

    def test_check_invariants_detects_foreign_queue_id(self):
        queue = make_queue()
        vcpu = make_vcpu()
        queue.enqueue_sorted(vcpu, 0)
        vcpu.runqueue_id = 99
        with pytest.raises(AssertionError):
            queue.check_invariants()

    def test_nonpositive_timeslice_rejected(self):
        with pytest.raises(ValueError):
            RunQueue(1, lambda v: 0.0, 1, timeslice_ns=0)
