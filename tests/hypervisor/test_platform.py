"""Platform factories: Firecracker and Xen assemblies."""

import pytest

from repro.hypervisor.platform import (
    firecracker_platform,
    platform_by_name,
    xen_platform,
)
from repro.hypervisor.scheduler.cfs import CfsPolicy
from repro.hypervisor.scheduler.credit2 import Credit2Policy


class TestFactories:
    def test_firecracker_uses_cfs(self):
        assert isinstance(firecracker_platform().policy, CfsPolicy)

    def test_xen_uses_credit2(self):
        assert isinstance(xen_platform().policy, Credit2Policy)

    def test_cost_models_match_platform(self):
        assert firecracker_platform().costs.name == "firecracker"
        assert xen_platform().costs.name == "xen"

    def test_default_host_is_r650(self):
        virt = firecracker_platform()
        assert virt.host.spec.name == "cloudlab-r650"
        assert virt.host.spec.total_cores == 72

    def test_default_one_ull_queue(self):
        assert len(firecracker_platform().host.ull_runqueues()) == 1

    def test_multiple_ull_queues(self):
        virt = firecracker_platform(reserved_ull_cores=4)
        assert len(virt.host.ull_runqueues()) == 4

    def test_lookup_by_name(self):
        assert platform_by_name("firecracker").name == "firecracker"
        assert platform_by_name("Xen").name == "xen"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            platform_by_name("hyperv")

    def test_runqueue_sort_key_follows_policy(self):
        """Xen queues order by credit, Firecracker by vruntime."""
        from repro.hypervisor.vcpu import Vcpu

        fc = firecracker_platform()
        xen = xen_platform()
        vcpu = Vcpu(index=0, sandbox_id="sb")
        vcpu.credit = 100.0
        vcpu.vruntime = 7.0
        assert fc.host.runqueues[0].sort_key(vcpu) == 7.0
        assert xen.host.runqueues[0].sort_key(vcpu) == -100.0
