"""Vanilla pause/resume: the six steps and their measured breakdown."""

import pytest

from repro.hypervisor.pause_resume import (
    HOT_STEPS,
    STEP_FINALIZE,
    STEP_LOAD,
    STEP_LOCK,
    STEP_MERGE,
    STEP_PARSE,
    STEP_SANITY,
    ResumeLockBusyError,
)
from repro.hypervisor.platform import firecracker_platform, xen_platform
from repro.hypervisor.sandbox import Sandbox, SandboxError, SandboxState
from repro.hypervisor.vcpu import VcpuState


def place_and_pause(virt, vcpus=2):
    sandbox = Sandbox(vcpus=vcpus, memory_mb=512)
    virt.vanilla.place_initial(sandbox, 0)
    virt.vanilla.pause(sandbox, 0)
    return sandbox


class TestPlaceInitial:
    def test_place_transitions_to_running(self):
        virt = firecracker_platform()
        sandbox = Sandbox(vcpus=2, memory_mb=512)
        virt.vanilla.place_initial(sandbox, 0)
        assert sandbox.state is SandboxState.RUNNING
        assert all(v.state is VcpuState.RUNNABLE for v in sandbox.vcpus)

    def test_place_spreads_vcpus_over_queues(self):
        virt = firecracker_platform()
        sandbox = Sandbox(vcpus=4, memory_mb=512)
        virt.vanilla.place_initial(sandbox, 0)
        queues = {v.runqueue_id for v in sandbox.vcpus}
        assert len(queues) == 4  # least-loaded placement spreads

    def test_place_only_uses_general_queues(self):
        virt = firecracker_platform()
        sandbox = Sandbox(vcpus=8, memory_mb=512)
        virt.vanilla.place_initial(sandbox, 0)
        ull_ids = {q.runqueue_id for q in virt.host.ull_runqueues()}
        assert not ull_ids & {v.runqueue_id for v in sandbox.vcpus}


class TestPause:
    def test_pause_empties_queues(self):
        virt = firecracker_platform()
        sandbox = place_and_pause(virt, vcpus=3)
        assert sandbox.state is SandboxState.PAUSED
        assert all(len(q) == 0 for q in virt.host.runqueues.values())

    def test_pause_result_counts_dequeues(self):
        virt = firecracker_platform()
        sandbox = Sandbox(vcpus=3, memory_mb=512)
        virt.vanilla.place_initial(sandbox, 0)
        result = virt.vanilla.pause(sandbox, 0)
        assert result.dequeued_vcpus == 3
        assert result.duration_ns > 0

    def test_pause_requires_running(self):
        virt = firecracker_platform()
        sandbox = Sandbox(vcpus=1, memory_mb=512)
        with pytest.raises(SandboxError):
            virt.vanilla.pause(sandbox, 0)


class TestResumeSteps:
    def test_breakdown_has_all_six_steps(self):
        virt = firecracker_platform()
        sandbox = place_and_pause(virt)
        result = virt.vanilla.resume(sandbox, 0)
        assert set(result.breakdown.phases) == {
            STEP_PARSE, STEP_LOCK, STEP_SANITY,
            STEP_MERGE, STEP_LOAD, STEP_FINALIZE,
        }

    def test_resume_requires_paused(self):
        virt = firecracker_platform()
        sandbox = Sandbox(vcpus=1, memory_mb=512)
        virt.vanilla.place_initial(sandbox, 0)
        with pytest.raises(SandboxError):
            virt.vanilla.resume(sandbox, 0)

    def test_resume_leaves_sandbox_running(self):
        virt = firecracker_platform()
        sandbox = place_and_pause(virt)
        virt.vanilla.resume(sandbox, 0)
        assert sandbox.state is SandboxState.RUNNING
        assert sandbox.resume_count == 1

    def test_resume_requeues_all_vcpus(self):
        virt = firecracker_platform()
        sandbox = place_and_pause(virt, vcpus=5)
        result = virt.vanilla.resume(sandbox, 0)
        assert len(result.runqueue_ids) == 5
        total = sum(len(q) for q in virt.host.runqueues.values())
        assert total == 5

    def test_resume_queues_stay_sorted(self):
        virt = firecracker_platform()
        sandbox = place_and_pause(virt, vcpus=8)
        virt.vanilla.resume(sandbox, 0)
        for queue in virt.host.runqueues.values():
            queue.check_invariants()

    def test_lock_released_after_failure(self):
        """Step 2's lock must not leak when sanity checks fail."""
        virt = firecracker_platform()
        sandbox = Sandbox(vcpus=1, memory_mb=512)
        virt.vanilla.place_initial(sandbox, 0)
        with pytest.raises(SandboxError):
            virt.vanilla.resume(sandbox, 0)  # not paused
        # lock free again: a legitimate resume succeeds
        virt.vanilla.pause(sandbox, 0)
        assert virt.vanilla.resume(sandbox, 0).total_ns > 0

    def test_pause_resume_cycle_repeats(self):
        virt = firecracker_platform()
        sandbox = place_and_pause(virt)
        for _ in range(5):
            virt.vanilla.resume(sandbox, 0)
            virt.vanilla.pause(sandbox, 0)
        assert sandbox.pause_count == 6
        assert sandbox.resume_count == 5


class TestCalibration:
    def test_1vcpu_resume_is_about_1_1us(self):
        virt = firecracker_platform()
        sandbox = place_and_pause(virt, vcpus=1)
        result = virt.vanilla.resume(sandbox, 0)
        assert result.total_ns == pytest.approx(1100, rel=0.05)

    def test_hot_steps_share_87_5_percent_at_1_vcpu(self):
        virt = firecracker_platform()
        sandbox = place_and_pause(virt, vcpus=1)
        result = virt.vanilla.resume(sandbox, 0)
        assert result.breakdown.combined_share(HOT_STEPS) == pytest.approx(
            0.875, abs=0.01
        )

    def test_hot_steps_share_grows_with_vcpus(self):
        shares = []
        for vcpus in (1, 8, 36):
            virt = firecracker_platform()
            sandbox = place_and_pause(virt, vcpus=vcpus)
            result = virt.vanilla.resume(sandbox, 0)
            shares.append(result.breakdown.combined_share(HOT_STEPS))
        assert shares == sorted(shares)
        assert 0.87 <= shares[0] <= 0.89
        assert shares[-1] >= 0.91

    def test_resume_time_grows_with_vcpus(self):
        totals = []
        for vcpus in (1, 8, 36):
            virt = firecracker_platform()
            sandbox = place_and_pause(virt, vcpus=vcpus)
            totals.append(virt.vanilla.resume(sandbox, 0).total_ns)
        assert totals == sorted(totals)
        assert totals[0] < totals[-1]

    def test_xen_resume_slower_than_firecracker(self):
        def resume_ns(factory):
            virt = factory()
            sandbox = place_and_pause(virt, vcpus=1)
            return virt.vanilla.resume(sandbox, 0).total_ns

        assert resume_ns(xen_platform) > resume_ns(firecracker_platform)
