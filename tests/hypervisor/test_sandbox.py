"""Sandbox lifecycle state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypervisor.sandbox import (
    Sandbox,
    SandboxError,
    SandboxState,
    _TRANSITIONS,
)


class TestConstruction:
    def test_starts_creating(self):
        assert Sandbox(vcpus=1, memory_mb=128).state is SandboxState.CREATING

    def test_vcpus_created_with_indices(self):
        sandbox = Sandbox(vcpus=3, memory_mb=128)
        assert [v.index for v in sandbox.vcpus] == [0, 1, 2]
        assert all(v.sandbox_id == sandbox.sandbox_id for v in sandbox.vcpus)

    def test_zero_vcpus_rejected(self):
        with pytest.raises(SandboxError):
            Sandbox(vcpus=0, memory_mb=128)

    def test_zero_memory_rejected(self):
        with pytest.raises(SandboxError):
            Sandbox(vcpus=1, memory_mb=0)

    def test_unique_ids(self):
        a = Sandbox(vcpus=1, memory_mb=128)
        b = Sandbox(vcpus=1, memory_mb=128)
        assert a.sandbox_id != b.sandbox_id

    def test_explicit_id(self):
        assert Sandbox(1, 128, sandbox_id="mine").sandbox_id == "mine"


class TestTransitions:
    def test_normal_lifecycle(self):
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        for state in (
            SandboxState.RUNNING,
            SandboxState.PAUSED,
            SandboxState.RESUMING,
            SandboxState.RUNNING,
            SandboxState.STOPPED,
        ):
            sandbox.transition(state)
        assert sandbox.state is SandboxState.STOPPED

    def test_illegal_transition_raises(self):
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        with pytest.raises(SandboxError):
            sandbox.transition(SandboxState.PAUSED)  # CREATING -> PAUSED

    def test_stopped_is_terminal(self):
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        sandbox.transition(SandboxState.STOPPED)
        for state in SandboxState:
            with pytest.raises(SandboxError):
                sandbox.transition(state)

    def test_pause_count_increments(self):
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        sandbox.transition(SandboxState.RUNNING)
        sandbox.transition(SandboxState.PAUSED)
        assert sandbox.pause_count == 1

    def test_require_state_passes(self):
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        sandbox.require_state(SandboxState.CREATING, SandboxState.RUNNING)

    def test_require_state_raises_with_message(self):
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        with pytest.raises(SandboxError, match="expected state paused"):
            sandbox.require_state(SandboxState.PAUSED)

    @given(st.lists(st.sampled_from(list(SandboxState)), max_size=12))
    @settings(max_examples=60)
    def test_state_never_escapes_transition_table(self, path):
        """Property: whatever sequence is attempted, the sandbox's
        state is only ever reached through a legal edge."""
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        for target in path:
            legal = target in _TRANSITIONS[sandbox.state]
            if legal:
                sandbox.transition(target)
            else:
                with pytest.raises(SandboxError):
                    sandbox.transition(target)


class TestHorseArtifacts:
    def test_clear_artifacts(self):
        sandbox = Sandbox(vcpus=2, memory_mb=128)
        sandbox.merge_vcpus = list(sandbox.vcpus)
        sandbox.assigned_ull_runqueue = 5
        sandbox.clear_horse_artifacts()
        assert sandbox.merge_vcpus is None
        assert sandbox.assigned_ull_runqueue is None
