"""Energy model and the skip-vs-coalesce DVFS consequence."""

import pytest

from repro.experiments.ablations_energy import ablate_skip_vs_coalesce
from repro.hypervisor.dvfs import DvfsGovernor, FrequencyRange, GovernorMode
from repro.hypervisor.energy import (
    CorePowerModel,
    EnergyAccount,
    frequency_error_ratio,
)
from repro.sim.units import seconds


class TestPowerModel:
    def test_power_at_max_is_peak(self):
        model = CorePowerModel(peak_watts=6.0, static_watts=1.8, max_khz=1000)
        assert model.power_watts(1000) == pytest.approx(6.0)

    def test_power_at_zero_is_static(self):
        model = CorePowerModel(peak_watts=6.0, static_watts=1.8, max_khz=1000)
        assert model.power_watts(0) == pytest.approx(1.8)

    def test_power_monotone_in_frequency(self):
        model = CorePowerModel()
        values = [model.power_watts(khz) for khz in (0, 1_000_000, 2_000_000, 3_500_000)]
        assert values == sorted(values)

    def test_cubic_scaling(self):
        model = CorePowerModel(peak_watts=10.0, static_watts=2.0, max_khz=1000)
        # dynamic at half frequency = (1/2)^3 of dynamic peak
        assert model.power_watts(500) == pytest.approx(2.0 + 8.0 / 8.0)

    def test_overclamp(self):
        model = CorePowerModel(max_khz=1000)
        assert model.power_watts(5000) == model.power_watts(1000)

    def test_energy_joules(self):
        model = CorePowerModel(peak_watts=6.0, static_watts=1.8, max_khz=1000)
        assert model.energy_joules(1000, seconds(2)) == pytest.approx(12.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CorePowerModel(peak_watts=0.0)
        with pytest.raises(ValueError):
            CorePowerModel(peak_watts=1.0, static_watts=1.0)

    def test_negative_inputs_rejected(self):
        model = CorePowerModel()
        with pytest.raises(ValueError):
            model.power_watts(-1)
        with pytest.raises(ValueError):
            model.energy_joules(1000, -1)


class TestFrequencyError:
    def test_exact_load_zero_error(self):
        governor = DvfsGovernor(mode=GovernorMode.ONDEMAND)
        assert frequency_error_ratio(governor, 500.0, 500.0) == 0.0

    def test_stale_load_positive_error(self):
        governor = DvfsGovernor(
            mode=GovernorMode.ONDEMAND,
            frequency=FrequencyRange(800_000, 3_500_000),
        )
        assert frequency_error_ratio(governor, 800.0, 100.0) > 0.0

    def test_performance_governor_immune_to_staleness(self):
        governor = DvfsGovernor(mode=GovernorMode.PERFORMANCE)
        assert frequency_error_ratio(governor, 800.0, 0.0) == 0.0


class TestEnergyAccount:
    def test_accumulates(self):
        account = EnergyAccount()
        account.charge_interval(1_000_000, seconds(1))
        account.charge_interval(2_000_000, seconds(1))
        assert account.intervals == 2
        assert account.total_joules > 0.0


class TestSkipVsCoalesceAblation:
    @pytest.fixture(scope="class")
    def points(self):
        return ablate_skip_vs_coalesce()

    def test_coalesced_error_always_zero(self, points):
        """The coalescing guarantee: DVFS sees exactly the vanilla load."""
        for point in points:
            assert point.coalesced_freq_error == pytest.approx(0.0, abs=1e-12)
            assert point.coalesced_load == pytest.approx(point.true_load)

    def test_skip_error_grows_with_vcpus(self, points):
        errors = [p.skipped_freq_error for p in points]
        assert errors == sorted(errors)
        assert errors[-1] > 0.3  # badly underclocked at 36 vCPUs

    def test_skip_power_deficit_grows(self, points):
        deficits = [p.skipped_power_deficit_watts for p in points]
        assert deficits == sorted(deficits)
        assert deficits[-1] > 0.5
