"""PELT load tracking: decay, folds, coalesced equivalence."""

import pytest

from repro.core.coalesce import apply_n_times
from repro.hypervisor.load_tracking import (
    DECAY_FACTOR,
    DEFAULT_ENTITY_WEIGHT,
    PELT_PERIOD_NS,
    RunqueueLoad,
)


class TestDecay:
    def test_decay_halves_after_32_periods(self):
        load = RunqueueLoad(value=1000.0)
        load.decay_to(32 * PELT_PERIOD_NS)
        assert load.value == pytest.approx(500.0, rel=1e-9)

    def test_no_time_no_decay(self):
        load = RunqueueLoad(value=100.0, last_update_ns=50)
        load.decay_to(50)
        assert load.value == 100.0

    def test_decay_backwards_rejected(self):
        load = RunqueueLoad(value=1.0, last_update_ns=100)
        with pytest.raises(ValueError):
            load.decay_to(50)

    def test_decay_factor_definition(self):
        assert DECAY_FACTOR ** 32 == pytest.approx(0.5)


class TestEnqueue:
    def test_enqueue_from_zero(self):
        load = RunqueueLoad()
        load.enqueue_entity(0)
        assert load.value == pytest.approx(
            DEFAULT_ENTITY_WEIGHT * (1 - DECAY_FACTOR)
        )

    def test_enqueue_is_affine(self):
        """The paper's observation: the update is L(x) = alpha x + beta."""
        load = RunqueueLoad(value=300.0)
        update = load.enqueue_update()
        load.enqueue_entity(0)
        assert load.value == pytest.approx(update.apply(300.0))

    def test_repeated_enqueue_converges_to_weight(self):
        load = RunqueueLoad()
        for _ in range(2000):
            load.enqueue_entity(0)
        assert load.value == pytest.approx(DEFAULT_ENTITY_WEIGHT, rel=1e-6)

    def test_updates_counter(self):
        load = RunqueueLoad()
        load.enqueue_entity(0)
        load.enqueue_entity(0)
        assert load.updates_applied == 2


class TestCoalescedApplication:
    def test_apply_coalesced_equals_n_folds(self):
        n = 36
        iterated = RunqueueLoad(value=555.0)
        update = iterated.enqueue_update()
        for _ in range(n):
            iterated.enqueue_entity(0)

        fused = RunqueueLoad(value=555.0)
        coalesced = update.compose_n(n)
        fused.apply_coalesced(0, coalesced.alpha_n, coalesced.beta_sum)

        assert fused.value == pytest.approx(iterated.value, rel=1e-12)
        assert fused.updates_applied == 1

    def test_apply_coalesced_decays_first(self):
        fused = RunqueueLoad(value=1000.0)
        fused.apply_coalesced(32 * PELT_PERIOD_NS, 1.0, 0.0)
        assert fused.value == pytest.approx(500.0)


class TestDequeue:
    def test_dequeue_removes_contribution(self):
        load = RunqueueLoad()
        load.enqueue_entity(0)
        load.dequeue_entity(0)
        assert load.value == pytest.approx(0.0, abs=1e-9)

    def test_dequeue_floors_at_zero(self):
        load = RunqueueLoad(value=1.0)
        load.dequeue_entity(0, weight=1e6)
        assert load.value == 0.0
