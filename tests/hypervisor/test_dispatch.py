"""Core dispatchers: timeslicing, rotation, priority preemption."""

import pytest

from repro.hypervisor.dispatch import CoreDispatcher, HostDispatcher, WorkItem
from repro.hypervisor.platform import firecracker_platform
from repro.hypervisor.vcpu import Vcpu
from repro.sim.engine import Engine
from repro.sim.units import microseconds, milliseconds


def make_setup(reserved_core=False):
    engine = Engine()
    virt = firecracker_platform()
    runqueue = (
        virt.host.ull_runqueues()[0]
        if reserved_core
        else virt.host.general_runqueues()[0]
    )
    dispatcher = CoreDispatcher(engine, runqueue, virt.policy, virt.costs)
    # Every quantum ends in an engine event: assert queue integrity
    # (sortedness, size counter, link structure) after each one.
    engine.add_watcher(lambda _event: runqueue.check_invariants())
    return engine, virt, dispatcher


def make_host_setup():
    engine = Engine()
    virt = firecracker_platform()
    host_dispatcher = HostDispatcher(engine, virt.host, virt.policy, virt.costs)

    def check_all(_event):
        for runqueue in virt.host.runqueues.values():
            runqueue.check_invariants()

    engine.add_watcher(check_all)
    return engine, virt, host_dispatcher


def make_item(work_ns, index=0, done=None):
    vcpu = Vcpu(index=index, sandbox_id=f"sb-{index}")
    return WorkItem(
        vcpu=vcpu,
        remaining_ns=work_ns,
        on_complete=done,
    )


class TestSingleItem:
    def test_completes_after_exact_work(self):
        engine, _, dispatcher = make_setup()
        finished = []
        dispatcher.submit(make_item(microseconds(10), done=finished.append))
        engine.run()
        assert len(finished) == 1
        assert finished[0].completed_at == microseconds(10)
        assert finished[0].remaining_ns == 0

    def test_work_longer_than_slice_rotates(self):
        engine, _, dispatcher = make_setup()
        # 12 ms of work on a 5 ms quantum: 2 rotations.
        dispatcher.submit(make_item(milliseconds(12)))
        engine.run()
        assert dispatcher.context_switches == 2
        assert len(dispatcher.completed) == 1
        assert dispatcher.completed[0].completed_at == milliseconds(12)

    def test_nonpositive_work_rejected(self):
        with pytest.raises(ValueError):
            make_item(0)

    def test_double_submit_same_vcpu_rejected(self):
        engine, _, dispatcher = make_setup()
        vcpu = Vcpu(index=0, sandbox_id="sb")
        dispatcher.submit(WorkItem(vcpu=vcpu, remaining_ns=1000))
        with pytest.raises(ValueError):
            dispatcher.submit(WorkItem(vcpu=vcpu, remaining_ns=1000))


class TestInterleaving:
    def test_two_items_share_the_core(self):
        engine, _, dispatcher = make_setup()
        order = []
        dispatcher.submit(
            make_item(milliseconds(10), index=0, done=lambda i: order.append(0))
        )
        dispatcher.submit(
            make_item(milliseconds(10), index=1, done=lambda i: order.append(1))
        )
        engine.run()
        assert sorted(order) == [0, 1]
        # Total elapsed = sum of work (single core).
        assert engine.now == milliseconds(20)

    def test_completion_respects_cfs_fairness(self):
        """A short item submitted behind a long one still finishes first
        once the long item's vruntime exceeds it (rotation)."""
        engine, _, dispatcher = make_setup()
        order = []
        dispatcher.submit(
            make_item(milliseconds(50), index=0, done=lambda i: order.append("long"))
        )
        dispatcher.submit(
            make_item(milliseconds(6), index=1, done=lambda i: order.append("short"))
        )
        engine.run()
        assert order[0] == "short"

    def test_ull_core_uses_1us_timeslice(self):
        engine, _, dispatcher = make_setup(reserved_core=True)
        # 10 us of work -> at least 9 rotations at a 1 us quantum.
        dispatcher.submit(make_item(microseconds(10)))
        engine.run()
        assert dispatcher.context_switches >= 9

    def test_pending_counts(self):
        engine, _, dispatcher = make_setup()
        dispatcher.submit(make_item(1000, index=0))
        dispatcher.submit(make_item(1000, index=1))
        assert dispatcher.pending == 2
        engine.run()
        assert dispatcher.pending == 0


class TestPreemption:
    def test_preempt_idle_core_costs_nothing(self):
        engine, _, dispatcher = make_setup()
        assert dispatcher.preempt(1000) == 0
        assert dispatcher.preemptions == 0

    def test_preempt_delays_victim(self):
        engine, virt, dispatcher = make_setup()
        finished = []
        dispatcher.submit(make_item(microseconds(10), done=finished.append))
        switch = 2 * round(virt.costs.context_switch_ns)

        def strike():
            delay = dispatcher.preempt(microseconds(2))
            assert delay == microseconds(2) + switch

        engine.schedule_at(microseconds(4), strike)
        engine.run()
        victim = finished[0]
        assert victim.preempted_ns == microseconds(2) + switch
        assert victim.completed_at == microseconds(10) + victim.preempted_ns
        assert dispatcher.preemptions == 1

    def test_preempted_victim_resumes_head_of_line(self):
        engine, _, dispatcher = make_setup()
        order = []
        dispatcher.submit(
            make_item(milliseconds(2), index=0, done=lambda i: order.append("victim"))
        )
        dispatcher.submit(
            make_item(milliseconds(2), index=1, done=lambda i: order.append("waiter"))
        )
        engine.schedule_at(milliseconds(1), lambda: dispatcher.preempt(1000))
        engine.run()
        assert order == ["victim", "waiter"]

    def test_bad_preempt_duration_rejected(self):
        _, _, dispatcher = make_setup()
        with pytest.raises(ValueError):
            dispatcher.preempt(0)

    def test_multiple_preemptions_accumulate(self):
        engine, virt, dispatcher = make_setup()
        finished = []
        dispatcher.submit(make_item(milliseconds(1), done=finished.append))
        engine.schedule_at(microseconds(100), lambda: dispatcher.preempt(1000))
        engine.schedule_at(microseconds(300), lambda: dispatcher.preempt(1000))
        engine.run()
        switch = 2 * round(virt.costs.context_switch_ns)
        assert finished[0].preempted_ns == 2 * (1000 + switch)


class TestHostDispatcher:
    def test_one_dispatcher_per_core(self):
        _, virt, host_dispatcher = make_host_setup()
        assert len(host_dispatcher.cores) == virt.host.spec.total_cores

    def test_least_busy_placement_spreads(self):
        _, _, host_dispatcher = make_host_setup()
        used = set()
        for index in range(6):
            dispatcher = host_dispatcher.submit_to_least_busy(
                make_item(milliseconds(1), index=index)
            )
            used.add(dispatcher.runqueue.core_id)
        assert len(used) == 6

    def test_parallel_cores_finish_concurrently(self):
        engine, _, host_dispatcher = make_host_setup()
        for index in range(4):
            host_dispatcher.submit_to_least_busy(
                make_item(milliseconds(3), index=index)
            )
        engine.run()
        assert host_dispatcher.total_completed() == 4
        assert engine.now == milliseconds(3)  # ran in parallel

    def test_unknown_core_raises(self):
        _, _, host_dispatcher = make_host_setup()
        with pytest.raises(KeyError):
            host_dispatcher.core(9999)


class TestWatcherCoverage:
    def test_integrity_watcher_actually_fires(self):
        """The per-event invariant watcher must see every quantum —
        otherwise the integrity assertions above are vacuous."""
        engine, _, dispatcher = make_setup()
        seen = []
        engine.add_watcher(seen.append)
        dispatcher.submit(make_item(milliseconds(12)))
        engine.run()
        # 12 ms on a 5 ms quantum: at least 3 slice events observed.
        assert len(seen) >= 3

    def test_corrupted_queue_is_caught_at_the_next_event(self):
        """Mutation check: break the queue mid-run and the watcher
        installed by make_setup raises at the very next event."""
        engine, _, dispatcher = make_setup()
        dispatcher.submit(make_item(milliseconds(12), index=0))
        dispatcher.submit(make_item(milliseconds(12), index=1))

        def corrupt():
            dispatcher.runqueue.entities._size += 1

        engine.schedule_at(milliseconds(1), corrupt)
        with pytest.raises(AssertionError, match="size counter"):
            engine.run()
