"""End-to-end instrumentation of the resume hot path.

Drives a real FaaS platform under an activated observability bundle and
checks the acceptance properties: the invocation/resume span nesting,
the HORSE precompute tree, and the exact reconciliation between the
per-phase histograms and the resume spans' totals.
"""

import pytest

from repro.faas.function import FunctionSpec
from repro.faas.invocation import StartType
from repro.faas.platform import FaaSPlatform
from repro.obs import (
    RESUME_DISPATCH_NS,
    RESUME_LOAD_UPDATE_NS,
    RESUME_MERGE_NS,
    RESUME_TOTAL_NS,
    Observability,
    activate,
)
from repro.sim.units import seconds
from repro.workloads.firewall import FirewallWorkload


@pytest.fixture
def traced_run():
    """One provisioned HORSE invocation plus one WARM (vanilla resume)
    invocation, fully traced."""
    obs = Observability()
    with activate(obs):
        faas = FaaSPlatform.build("firecracker", seed=7)
        faas.register(FunctionSpec("fw", FirewallWorkload(), vcpus=2))
        faas.provision_warm("fw", count=1, use_horse=True)
        faas.trigger("fw", StartType.HORSE)
        faas.engine.run(until=faas.engine.now + seconds(1))
        faas.provision_warm("fw", count=1, use_horse=False)
        faas.trigger("fw", StartType.WARM)
        faas.engine.run(until=faas.engine.now + seconds(1))
    return obs


class TestSpanNesting:
    def test_resume_nests_under_invocation(self, traced_run):
        tracer = traced_run.tracer
        invocations = tracer.find("invocation")
        resumes = tracer.find("resume")
        assert invocations and resumes
        invocation_ids = {s.span_id for s in invocations}
        assert all(r.parent_id in invocation_ids for r in resumes)

    def test_hot_resume_has_the_paper_phases(self, traced_run):
        tracer = traced_run.tracer
        horse = [r for r in tracer.find("resume")
                 if r.attrs.get("path") == "horse"]
        assert horse
        children = tracer.children_of(horse[0])
        names = [c.name for c in children]
        assert names == [
            "parse", "lock", "sanity", "merge", "load_update", "dispatch",
        ]

    def test_precompute_happens_at_pause(self, traced_run):
        # HORSE moves the merge/load work into the pause: the pause
        # span owns a precompute subtree.
        tracer = traced_run.tracer
        pauses = [p for p in tracer.find("pause")
                  if p.attrs.get("path") == "horse"]
        assert pauses
        precomputes = tracer.find("precompute")
        assert precomputes
        pause_ids = {p.span_id for p in pauses}
        assert all(pc.parent_id in pause_ids for pc in precomputes)
        subtree = {c.name for pc in precomputes
                   for c in tracer.children_of(pc)}
        assert subtree == {"sort_vcpus", "p2sm_refresh", "coalesce"}

    def test_vanilla_resume_traced_too(self, traced_run):
        tracer = traced_run.tracer
        vanilla = [r for r in tracer.find("resume")
                   if r.attrs.get("path") == "vanilla"]
        assert vanilla

    def test_phases_tile_every_resume_exactly(self, traced_run):
        tracer = traced_run.tracer
        for resume in tracer.find("resume"):
            children = tracer.children_of(resume)
            assert sum(c.duration_ns for c in children) == resume.duration_ns
            # back-to-back, starting at the root's start
            cursor = resume.start_ns
            for child in children:
                assert child.start_ns == cursor
                cursor = child.end_ns

    def test_tracks_are_cpu_and_sandbox(self, traced_run):
        tracer = traced_run.tracer
        resume = tracer.find("resume")[0]
        assert tracer.process_names[resume.pid].startswith("cpu")
        assert tracer.thread_names[(resume.pid, resume.tid)].startswith("sb-")


class TestMetricReconciliation:
    def test_phase_histograms_sum_to_span_total_within_1pct(self, traced_run):
        histograms = traced_run.metrics.histograms()
        total = histograms[RESUME_TOTAL_NS].sum
        parts = (
            histograms[RESUME_MERGE_NS].sum
            + histograms[RESUME_LOAD_UPDATE_NS].sum
            + histograms[RESUME_DISPATCH_NS].sum
        )
        assert total > 0
        assert abs(parts - total) <= 0.01 * total

    def test_histogram_totals_match_span_durations(self, traced_run):
        histograms = traced_run.metrics.histograms()
        span_total = sum(
            r.duration_ns for r in traced_run.tracer.find("resume")
        )
        assert histograms[RESUME_TOTAL_NS].sum == span_total

    def test_resume_count_matches_spans(self, traced_run):
        counters = traced_run.metrics.counters()
        spans = traced_run.tracer.find("resume")
        assert counters["resume.count"].value == len(spans)

    def test_gateway_and_pool_counters(self, traced_run):
        counters = traced_run.metrics.counters()
        assert counters["gateway.trigger"].value == 2
        assert counters["gateway.complete"].value == 2
        assert counters["pool.hit"].value == 2
        assert counters["gateway.start.horse"].value == 1
        assert counters["gateway.start.warm"].value == 1


class TestZeroOverheadDefault:
    def test_untraced_platform_records_nothing(self):
        from repro.obs.context import NULL_OBS

        faas = FaaSPlatform.build("firecracker", seed=7)
        assert faas.obs is NULL_OBS
        faas.register(FunctionSpec("fw", FirewallWorkload()))
        faas.provision_warm("fw", count=1, use_horse=True)
        faas.trigger("fw", StartType.HORSE)
        faas.engine.run(until=faas.engine.now + seconds(1))
        assert len(NULL_OBS.tracer.spans) == 0
