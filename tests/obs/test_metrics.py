"""Metric registry: counters, gauges, and ns-latency histograms."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_NS,
    Histogram,
    MetricRegistry,
    NULL_REGISTRY,
)


class TestCounter:
    def test_inc(self):
        registry = MetricRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricRegistry().counter("c").inc(-1)


class TestGauge:
    def test_set_keeps_last_value(self):
        gauge = MetricRegistry().gauge("g")
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestHistogram:
    def test_exact_count_sum_min_max(self):
        histogram = Histogram("h")
        for value in (10, 20, 30):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 60
        assert histogram.minimum == 10
        assert histogram.maximum == 30
        assert histogram.mean == pytest.approx(20.0)

    def test_default_bounds_cover_ns_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS_NS[0] == 1.0
        assert DEFAULT_LATENCY_BUCKETS_NS[-1] == 5e10
        assert list(DEFAULT_LATENCY_BUCKETS_NS) == sorted(
            DEFAULT_LATENCY_BUCKETS_NS
        )

    def test_overflow_bucket_catches_huge_values(self):
        histogram = Histogram("h", bounds=(1.0, 10.0))
        histogram.observe(1e9)
        assert histogram.counts[-1] == 1

    def test_quantile_interpolates_and_clamps(self):
        histogram = Histogram("h", bounds=(10.0, 100.0, 1000.0))
        for value in (5, 50, 500):
            histogram.observe(value)
        assert histogram.quantile(0.0) == pytest.approx(5.0)
        assert histogram.quantile(1.0) == pytest.approx(500.0)
        assert 5.0 <= histogram.quantile(0.5) <= 500.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10.0, 1.0))

    def test_empty_series(self):
        histogram = Histogram("h")
        assert histogram.count == 0
        assert histogram.mean == 0.0
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 0.0

    def test_single_sample_every_quantile_is_that_sample(self):
        histogram = Histogram("h", bounds=(10.0, 100.0))
        histogram.observe(37.0)
        assert histogram.minimum == histogram.maximum == 37.0
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(37.0)

    def test_duplicate_values_clamp_to_the_value(self):
        # All mass on one point: interpolation inside the bucket must
        # not invent a spread the data doesn't have.
        histogram = Histogram("h", bounds=(10.0, 100.0, 1000.0))
        for _ in range(5):
            histogram.observe(50.0)
        assert histogram.mean == pytest.approx(50.0)
        for q in (0.0, 0.5, 0.9, 1.0):
            assert histogram.quantile(q) == pytest.approx(50.0)


class TestRegistry:
    def test_cross_type_name_collision_rejected(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_is_json_serializable(self):
        registry = MetricRegistry()
        registry.counter("c", help="a count").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(42)
        snapshot = registry.snapshot()
        text = json.dumps(snapshot)
        assert '"c"' in text
        assert snapshot["c"]["type"] == "counter"
        assert snapshot["h"]["type"] == "histogram"
        assert snapshot["h"]["count"] == 1

    def test_render_lists_every_instrument(self):
        registry = MetricRegistry()
        registry.counter("resume.count").inc()
        registry.histogram("resume.total_ns").observe(132)
        rendered = registry.render()
        assert "resume.count" in rendered
        assert "resume.total_ns" in rendered

    def test_help_text_stored(self):
        registry = MetricRegistry()
        assert registry.counter("c", help="events").help == "events"
        assert registry.histogram("h", help="latency").help == "latency"


class TestBoundHandles:
    """Registry-level handle cache: metric names are global, so bound
    instrument tuples are shared across short-lived components instead
    of being rebuilt per instance."""

    def test_factory_runs_once_and_result_is_shared(self):
        registry = MetricRegistry()
        calls = []

        def factory(metrics):
            calls.append(metrics)
            return (metrics.counter("f.hits"), metrics.counter("f.misses"))

        first = registry.bound("f", factory)
        second = registry.bound("f", factory)
        assert first is second
        assert calls == [registry]
        first[0].inc()
        assert registry.counter("f.hits").value == 1

    def test_caches_are_per_registry(self):
        factory = lambda metrics: metrics.counter("c")
        a, b = MetricRegistry(), MetricRegistry()
        assert a.bound("k", factory) is not b.bound("k", factory)

    def test_clear_drops_cached_handles(self):
        registry = MetricRegistry()
        factory = lambda metrics: metrics.counter("c")
        stale = registry.bound("k", factory)
        registry.clear()
        fresh = registry.bound("k", factory)
        assert fresh is not stale
        fresh.inc()
        assert registry.counter("c").value == 1


class TestNullRegistry:
    def test_disabled_and_swallows_everything(self):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("c").inc(100)
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(1)
        assert NULL_REGISTRY.counter("c").value == 0
        assert NULL_REGISTRY.histogram("h").count == 0

    def test_hands_out_shared_instruments(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
