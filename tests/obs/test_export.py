"""Exporters: Chrome trace-event JSON and the lossless JSONL round-trip."""

import json

from repro.obs.export import (
    iter_jsonl,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.span import Tracer


def make_tracer() -> Tracer:
    tracer = Tracer()
    tracer.name_process(0, "cpu0")
    tid = tracer.tid_for("sb-0", pid=0)
    timeline = tracer.timeline(
        "resume", 1000, category="resume", pid=0, tid=tid, path="horse"
    )
    timeline.phase("merge", 40)
    timeline.phase("load_update", 47)
    timeline.finish()
    tracer.record_instant("pool.evict", 5000, category="pool", pid=0, tid=tid)
    return tracer


class TestChromeTrace:
    def test_complete_events_use_microseconds(self):
        trace = to_chrome_trace(make_tracer())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        merge = next(e for e in spans if e["name"] == "merge")
        assert merge["ts"] == 1.0  # 1000 ns
        assert merge["dur"] == 0.04  # 40 ns
        assert merge["cat"] == "resume"

    def test_metadata_names_tracks(self):
        trace = to_chrome_trace(make_tracer())
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["pid"], e["tid"]): e["args"]["name"]
                 for e in metadata}
        assert names[("process_name", 0, 0)] == "cpu0"
        assert ("thread_name", 0, 1) in names

    def test_instants_are_i_events(self):
        trace = to_chrome_trace(make_tracer())
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "pool.evict"

    def test_parent_links_in_args(self):
        tracer = make_tracer()
        trace = to_chrome_trace(tracer)
        root = tracer.find("resume")[0]
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        merge = next(e for e in spans if e["name"] == "merge")
        assert merge["args"]["parent_id"] == root.span_id

    def test_written_file_is_valid_json(self, tmp_path):
        path = str(tmp_path / "out.trace.json")
        write_chrome_trace(make_tracer(), path)
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["displayTimeUnit"] == "ns"
        assert loaded["traceEvents"]


class TestJsonl:
    def test_first_line_is_meta(self):
        lines = list(iter_jsonl(make_tracer()))
        meta = json.loads(lines[0])
        assert meta["type"] == "meta"
        assert meta["process_names"] == {"0": "cpu0"}

    def test_span_lines_are_ns_exact(self):
        lines = list(iter_jsonl(make_tracer()))
        records = [json.loads(line) for line in lines[1:]]
        merge = next(r for r in records if r["name"] == "merge")
        assert merge["start_ns"] == 1000
        assert merge["duration_ns"] == 40

    def test_round_trip_preserves_chrome_export(self, tmp_path):
        original = make_tracer()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(original, path)
        restored = read_jsonl(path)
        assert to_chrome_trace(restored) == to_chrome_trace(original)

    def test_round_trip_preserves_span_structure(self, tmp_path):
        original = make_tracer()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(original, path)
        restored = read_jsonl(path)
        assert len(restored) == len(original)
        root = restored.find("resume")[0]
        assert [c.name for c in restored.children_of(root)] == [
            "merge", "load_update",
        ]
        # the restored tracer keeps allocating fresh ids
        new_span = restored.record_span("extra", 0, 1)
        assert new_span.span_id > max(s.span_id for s in original.spans)

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        try:
            read_jsonl(str(path))
        except ValueError as exc:
            assert "mystery" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")
