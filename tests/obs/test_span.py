"""Spans: recording, nesting, timelines, and the null tracer."""

import pytest

from repro.obs.span import NULL_TRACER, Span, Tracer


class TestRecording:
    def test_record_span_fields(self):
        tracer = Tracer()
        span = tracer.record_span(
            "work", 100, 50, category="c", pid=3, tid=7, key="v"
        )
        assert span.start_ns == 100
        assert span.duration_ns == 50
        assert span.end_ns == 150
        assert span.category == "c"
        assert (span.pid, span.tid) == (3, 7)
        assert span.attrs == {"key": "v"}
        assert len(tracer) == 1

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record_span("bad", 0, -1)

    def test_span_ids_are_unique_and_increasing(self):
        tracer = Tracer()
        ids = [tracer.record_span(f"s{i}", i, 1).span_id for i in range(5)]
        assert ids == sorted(set(ids))

    def test_record_instant_has_zero_duration(self):
        tracer = Tracer()
        instant = tracer.record_instant("tick", 42)
        assert instant.duration_ns == 0
        assert instant.kind == "instant"


class TestNesting:
    def test_spans_nest_under_open_span(self):
        tracer = Tracer()
        root = tracer.open_span("outer", 0)
        child = tracer.record_span("inner", 10, 5)
        root.close(100)
        assert child.parent_id == root.span.span_id
        assert root.span.duration_ns == 100
        assert tracer.children_of(root.span) == [child]
        assert tracer.roots() == [root.span]

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        a = tracer.record_span("a", 0, 1)
        opened = tracer.open_span("b", 0)
        child = tracer.record_span("c", 0, 1, parent=a)
        opened.close(1)
        assert child.parent_id == a.span_id

    def test_close_is_tolerant_of_unclosed_children(self):
        # An exception path may leave inner spans open; closing the
        # outer handle must pop and close them at the same end time.
        tracer = Tracer()
        outer = tracer.open_span("outer", 0)
        inner = tracer.open_span("inner", 10)
        outer.close(50)
        assert inner.span.duration_ns == 40
        assert outer.span.duration_ns == 50
        assert len(tracer._stack) == 0

    def test_double_close_is_noop(self):
        tracer = Tracer()
        handle = tracer.open_span("s", 0)
        handle.close(10)
        handle.close(99)
        assert handle.span.duration_ns == 10
        assert len(tracer) == 1


class TestTimeline:
    def test_phases_tile_the_root_exactly(self):
        tracer = Tracer()
        timeline = tracer.timeline("resume", 1000, category="resume")
        timeline.phase("parse", 15)
        timeline.phase("merge", 40, threads=2)
        timeline.phase("load_update", 47)
        root = timeline.finish(total_ns=102)
        assert root.start_ns == 1000
        assert root.duration_ns == 15 + 40 + 47
        children = tracer.children_of(root)
        assert [c.name for c in children] == ["parse", "merge", "load_update"]
        # back-to-back layout: each child starts where the last ended
        assert children[0].start_ns == 1000
        assert children[1].start_ns == children[0].end_ns
        assert children[2].start_ns == children[1].end_ns
        assert sum(c.duration_ns for c in children) == root.duration_ns

    def test_phases_inherit_track_and_category(self):
        tracer = Tracer()
        timeline = tracer.timeline("op", 0, category="x", pid=4, tid=9)
        span = timeline.phase("p", 1)
        assert (span.pid, span.tid, span.category) == (4, 9, "x")


class TestTracks:
    def test_tid_interning_is_stable(self):
        tracer = Tracer()
        first = tracer.tid_for("sb-0", pid=1)
        again = tracer.tid_for("sb-0", pid=1)
        other = tracer.tid_for("sb-1", pid=1)
        assert first == again
        assert first != other
        assert tracer.thread_names[(1, first)] == "sb-0"

    def test_name_process(self):
        tracer = Tracer()
        tracer.name_process(3, "cpu3")
        assert tracer.process_names == {3: "cpu3"}


class TestClockSpan:
    def test_span_context_manager_uses_clock(self):
        times = iter([100, 250])
        tracer = Tracer(clock=lambda: next(times))
        with tracer.span("timed") as handle:
            pass
        assert handle.span.start_ns == 100
        assert handle.span.duration_ns == 150

    def test_span_without_clock_raises(self):
        with pytest.raises(RuntimeError):
            with Tracer().span("nope"):
                pass


class TestNullTracer:
    def test_disabled_and_swallows_everything(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.record_span("s", 0, 1)
        NULL_TRACER.record_instant("i", 0)
        handle = NULL_TRACER.open_span("o", 0)
        handle.close(10)
        timeline = NULL_TRACER.timeline("t", 0)
        timeline.phase("p", 5)
        timeline.finish()
        assert len(NULL_TRACER.spans) == 0
        assert NULL_TRACER.tid_for("anything") == 0

    def test_null_tracer_shares_one_span_object(self):
        a = NULL_TRACER.record_span("a", 0, 1)
        b = NULL_TRACER.record_span("b", 0, 1)
        assert a is b


def test_span_str_is_readable():
    span = Span(name="merge", start_ns=5, duration_ns=3, span_id=1,
                attrs={"threads": 2})
    assert "merge" in str(span)
    assert "threads=2" in str(span)
