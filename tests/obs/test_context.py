"""The observability bundle and the active-context stack."""

from repro.obs.context import NULL_OBS, Observability, activate, current
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.span import NULL_TRACER


class TestBundle:
    def test_default_bundle_is_enabled(self):
        obs = Observability()
        assert obs.enabled is True
        assert obs.tracer.enabled is True
        assert obs.metrics.enabled is True

    def test_null_bundle_is_disabled(self):
        assert NULL_OBS.enabled is False
        assert NULL_OBS.tracer is NULL_TRACER
        assert NULL_OBS.metrics is NULL_REGISTRY


class TestActiveContext:
    def test_default_is_null(self):
        assert current() is NULL_OBS

    def test_activate_nests_and_restores(self):
        outer = Observability()
        inner = Observability()
        with activate(outer):
            assert current() is outer
            with activate(inner):
                assert current() is inner
            assert current() is outer
        assert current() is NULL_OBS

    def test_activate_restores_on_exception(self):
        obs = Observability()
        try:
            with activate(obs):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current() is NULL_OBS

    def test_platforms_built_inside_pick_up_bundle(self):
        from repro.hypervisor.platform import firecracker_platform

        obs = Observability()
        with activate(obs):
            platform = firecracker_platform()
        assert platform.vanilla.obs is obs

    def test_platforms_built_outside_stay_null(self):
        from repro.hypervisor.platform import firecracker_platform

        platform = firecracker_platform()
        assert platform.vanilla.obs is NULL_OBS
