"""Deterministic subsystem profiler: classification, artifacts, CLI.

The determinism check shells out twice: sandbox/invocation ids are
process-global counters, so only two fresh processes with the same seed
can be compared byte-for-byte (same pattern as the chaos CLI test).
"""

import json
import os
import subprocess
import sys

from repro.obs.profile import (
    STEM_SUBSYSTEMS,
    SubsystemProfiler,
    current_profiler,
    profiling,
)
from repro.sim.engine import Engine

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def cli_profile(out_dir, *extra):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", "profile", "chaos",
         "--hosts", "2", "--requests", "150", "--seed", "3",
         "--out-dir", str(out_dir), *extra],
        capture_output=True, env=env, text=True,
    )


class TestClassification:
    def test_label_stem_maps_to_subsystem(self):
        profiler = SubsystemProfiler()
        profiler.record("slice:core0:17", 10, 5)
        ((key, cell),) = profiler._sites.items()
        assert key == ("main", "hypervisor.dispatch", "slice")
        assert cell == [1, 10, 5]

    def test_unknown_stem_surfaces_as_other(self):
        profiler = SubsystemProfiler()
        profiler.record("mystery-event:42", 1, 1)
        ((key, _),) = profiler._sites.items()
        assert key == ("main", "other.mystery-event", "mystery-event")

    def test_empty_label_is_unlabeled_process_work(self):
        profiler = SubsystemProfiler()
        profiler.record("", 1, 1)
        ((key, _),) = profiler._sites.items()
        assert key == ("main", "sim.process", "unlabeled")

    def test_capacity_wake_has_a_named_subsystem(self):
        # The parking-lot wake event must never show up as other.*.
        assert (
            STEM_SUBSYSTEMS["resilience-capacity-wake"]
            == "resilience.capacity"
        )

    def test_phase_separates_attribution(self):
        profiler = SubsystemProfiler()
        profiler.record("slice:1", 1, 1)
        profiler.phase("second")
        profiler.record("slice:1", 1, 1)
        phases = sorted(phase for phase, _, _ in profiler._sites)
        assert phases == ["main", "second"]

    def test_cancelled_events_get_a_synthetic_site(self):
        profiler = SubsystemProfiler()
        profiler.record_cancelled()
        profiler.record_cancelled()
        cell = profiler._sites[("main", "sim.engine", "cancelled")]
        assert cell == [2, 0, 0]


class TestArtifacts:
    def _loaded(self):
        profiler = SubsystemProfiler("unit")
        profiler.record("slice:0", 100, 7)
        profiler.record("slice:1", 50, 3)
        profiler.record("complete:9", 25, 2)
        return profiler

    def test_collapsed_stacks_format_and_order(self):
        text = self._loaded().collapsed_stacks()
        assert text.endswith("\n")
        assert text.splitlines() == [
            "unit;main;hypervisor.dispatch;slice 2",
            "unit;main;faas.gateway;complete 1",
        ]

    def test_hotspot_table_shares_sum_to_one(self):
        table = self._loaded().hotspot_table()
        assert table["total_samples"] == 3
        assert table["total_sim_ns"] == 175
        assert sum(row["sample_share"] for row in table["hotspots"]) == 1.0
        # Hottest first; ties broken by key so order is a total order.
        assert table["hotspots"][0]["site"] == "slice"

    def test_hotspot_table_empty_profiler(self):
        table = SubsystemProfiler().hotspot_table()
        assert table["total_samples"] == 0
        assert table["hotspots"] == []

    def test_hotspot_json_is_stable_under_insertion_order(self):
        first = self._loaded()
        second = SubsystemProfiler("unit")
        second.record("complete:9", 25, 2)
        second.record("slice:1", 50, 3)
        second.record("slice:0", 100, 7)
        assert first.hotspot_json() == second.hotspot_json()
        json.loads(first.hotspot_json())  # stays valid JSON

    def test_hotspot_text_limit(self):
        text = self._loaded().hotspot_text(limit=1)
        assert "slice" in text
        assert "complete" not in text

    def test_wall_fields_stay_out_of_deterministic_artifacts(self):
        profiler = self._loaded()
        profiler.scheduler_wall_ns = 123456
        assert "123456" not in profiler.collapsed_stacks()
        assert "wall" not in profiler.hotspot_json()

    def test_named_coverage(self):
        assert SubsystemProfiler().named_coverage() == 1.0
        profiler = SubsystemProfiler()
        profiler.record("slice:0", 1, 3)
        profiler.record("mystery:0", 1, 1)
        assert profiler.named_coverage() == 0.75


class TestEngineHookup:
    def test_engine_inside_block_records_events(self):
        profiler = SubsystemProfiler("hooked")
        with profiling(profiler) as active:
            assert current_profiler() is active
            engine = Engine()
            engine.schedule_at(10, lambda: None, label="slice:0")
            doomed = engine.schedule_at(20, lambda: None, label="slice:1")
            doomed.cancelled = True
            engine.run()
        assert current_profiler() is None
        table = profiler.hotspot_table()
        sites = {
            (row["subsystem"], row["site"]): row["samples"]
            for row in table["hotspots"]
        }
        assert sites[("hypervisor.dispatch", "slice")] == 1
        assert sites[("sim.engine", "cancelled")] == 1
        # Sim time is attributed to the event that consumed it.
        assert table["total_sim_ns"] == 10

    def test_engine_outside_block_is_unprofiled(self):
        engine = Engine()
        assert engine._profiler is None


class TestCliDeterminism:
    def test_same_seed_artifacts_byte_identical(self, tmp_path):
        first = cli_profile(tmp_path / "a")
        second = cli_profile(tmp_path / "b")
        assert first.returncode == 0, first.stderr
        assert second.returncode == 0, second.stderr

        for name in ("chaos.collapsed", "chaos.hotspots.json"):
            a = (tmp_path / "a" / name).read_bytes()
            b = (tmp_path / "b" / name).read_bytes()
            assert a == b, f"{name} differs across identical runs"
            assert a

        # stdout is deterministic except the --out-dir paths themselves.
        strip = lambda out: [
            line for line in out.splitlines()
            if not line.startswith("wrote ")
        ]
        assert strip(first.stdout) == strip(second.stdout)

    def test_artifacts_name_every_chaos_subsystem(self, tmp_path):
        result = cli_profile(tmp_path)
        assert result.returncode == 0, result.stderr
        table = json.loads((tmp_path / "chaos.hotspots.json").read_text())
        unnamed = [
            row for row in table["hotspots"]
            if row["subsystem"].startswith("other.")
        ]
        assert not unnamed, f"unclassified chaos work: {unnamed}"
        phases = {row["phase"] for row in table["hotspots"]}
        assert phases == {"breaker", "retries-only", "vanilla"}
