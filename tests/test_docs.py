"""Documentation gates: the deliverable docs exist, cover the required
sections, and every public module carries a docstring."""

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestRepositoryDocs:
    def test_design_md_covers_required_sections(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        for required in (
            "System inventory",
            "Per-experiment index",
            "Substitution",
            "Table 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "§5.2",
            "§5.4",
        ):
            assert required in text, f"DESIGN.md missing {required!r}"

    def test_experiments_md_reports_paper_vs_measured(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for required in (
            "paper vs. measured",
            "Table 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Deviations summary",
            "528",            # the §5.2 memory anchor
            "7.16",           # the documented speedup deviation
        ):
            assert required in text, f"EXPERIMENTS.md missing {required!r}"

    def test_model_md_documents_calibration(self):
        text = (REPO_ROOT / "MODEL.md").read_text()
        for required in ("Anchors", "Vanilla resume", "HORSE fast path",
                         "inconsistency", "executed for real"):
            assert required in text, f"MODEL.md missing {required!r}"

    def test_readme_has_install_quickstart_architecture(self):
        text = (REPO_ROOT / "README.md").read_text()
        for required in ("## Install", "## Quickstart", "## Architecture",
                         "## Reproducing the paper"):
            assert required in text, f"README.md missing {required!r}"

    def test_design_maps_every_bench_target(self):
        """Each bench file named in DESIGN.md's experiment index exists."""
        text = (REPO_ROOT / "DESIGN.md").read_text()
        import re

        for name in set(re.findall(r"benchmarks/(test_bench_\w+\.py)", text)):
            assert (REPO_ROOT / "benchmarks" / name).exists(), name


def _walk_modules():
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        yield module_info.name


class TestDocstrings:
    @pytest.mark.parametrize("module_name", sorted(_walk_modules()))
    def test_every_module_has_a_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module_name} lacks a module docstring"
        )

    def test_public_classes_documented_in_core(self):
        """The paper's contribution must be fully documented."""
        import repro.core as core

        for name in core.__all__:
            item = getattr(core, name)
            if isinstance(item, type):
                assert item.__doc__, f"repro.core.{name} lacks a docstring"
