"""Examples gate: every shipped example runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamplesInventory:
    def test_at_least_three_examples(self):
        assert len(EXAMPLES) >= 3

    def test_quickstart_exists(self):
        assert EXAMPLES_DIR / "quickstart.py" in EXAMPLES

    def test_every_example_has_a_docstring_and_main(self):
        for path in EXAMPLES:
            text = path.read_text()
            assert '"""' in text.split("\n\n")[0] or text.startswith(
                "#!"
            ), f"{path.name}: missing header docstring"
            assert 'if __name__ == "__main__":' in text, path.name


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{example.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example.name} printed nothing"
