"""Fault injection: every kind is deterministic, replayable, and caught.

The core claim a fault harness must prove about *itself* is
non-vacuity: enabling an injector has to produce reported violations,
otherwise a green "0 violations" run proves nothing.  One test per
kind runs the checked Figure-3 cycles with exactly that fault planned
and asserts (a) it was injected and (b) at least one violation was
reported with span context.
"""

import pytest

from repro.check import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    check_figure3,
)

#: Small fast sweep shared by the per-kind tests.
FAST = dict(vcpu_counts=(1, 4), repetitions=1)


class TestPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor_strike")

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultSpec("clock_skew", cycle=-1)

    def test_strike_cycle_is_deterministic_in_the_seed(self):
        plan = FaultPlan(seed=5, specs=(FaultSpec("stale_arrayb"),))
        first = FaultInjector(plan)._armed[0].strike_cycle
        second = FaultInjector(plan)._armed[0].strike_cycle
        assert first == second
        pinned = FaultInjector(
            FaultPlan(seed=5, specs=(FaultSpec("stale_arrayb", cycle=2),))
        )
        assert pinned._armed[0].strike_cycle == 2


class TestEveryKindIsCaught:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_injected_fault_produces_reported_violations(self, kind):
        report = check_figure3(
            fault_plan=FaultPlan.single(kind, seed=11), **FAST
        )
        assert report.unfired == [], f"{kind} never found an eligible cycle"
        assert [f.kind for f in report.injected] == [kind]
        assert len(report.violations) >= 1, f"{kind} corrupted state undetected"
        # Violations carry the enclosing check.cycle span context when
        # an observability bundle is active; at minimum they name the
        # cycle that was corrupted.
        assert all(v.context for v in report.violations)

    def test_same_plan_replays_identically(self):
        plan = FaultPlan.single("stale_posa", seed=3)
        first = check_figure3(fault_plan=plan, **FAST)
        second = check_figure3(fault_plan=plan, **FAST)
        assert [(f.kind, f.cycle) for f in first.injected] == [
            (f.kind, f.cycle) for f in second.injected
        ]
        assert [(v.checker, v.context) for v in first.violations] == [
            (v.checker, v.context) for v in second.violations
        ]

    def test_clean_plan_means_clean_report(self):
        report = check_figure3(**FAST)
        assert report.ok
        assert report.violations == []
        assert report.injected == []


class TestEligibilityAccounting:
    def test_fault_with_no_eligible_cycle_is_reported_unfired(self):
        # drop_coalesced can never fire when coalescing is off everywhere.
        from repro.core.hot_resume import HorseConfig

        report = check_figure3(
            setups={"ppsm": HorseConfig.ppsm_only()},
            fault_plan=FaultPlan.single("drop_coalesced", seed=0),
            **FAST,
        )
        assert report.unfired == ["drop_coalesced"]
        assert not report.ok
