"""Invariant registry: triggers, reporting, and the built-in checkers."""

import pytest

from repro.check import (
    InvariantRegistry,
    Trigger,
    default_registry,
    dvfs_sample_checker,
    event_heap_checker,
    lifecycle_checker,
    pool_checker,
    runqueue_checker,
)
from repro.core.hot_resume import HorsePauseResume
from repro.hypervisor.platform import firecracker_platform
from repro.hypervisor.sandbox import Sandbox
from repro.obs import MetricRegistry, Observability, Tracer
from repro.sim.engine import Engine


def make_paused_pair():
    """A platform with one running and one HORSE-paused uLL sandbox."""
    virt = firecracker_platform()
    horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
    running = Sandbox(vcpus=2, memory_mb=64, is_ull=True)
    paused = Sandbox(vcpus=2, memory_mb=64, is_ull=True)
    virt.vanilla.place_initial(running, 0)
    virt.vanilla.place_initial(paused, 0)
    horse.pause(paused, 0)
    return virt, horse, running, paused


class TestTriggers:
    def test_boundary_run_sweeps_every_trigger(self):
        registry = InvariantRegistry()
        runs = {"every": 0, "nth": 0, "boundary": 0}
        registry.register(
            "c.every", lambda now: runs.__setitem__("every", runs["every"] + 1) or [],
            trigger=Trigger.EVERY_EVENT,
        )
        registry.register(
            "c.nth", lambda now: runs.__setitem__("nth", runs["nth"] + 1) or [],
            trigger=Trigger.EVERY_N_EVENTS, every_n=3,
        )
        registry.register(
            "c.boundary",
            lambda now: runs.__setitem__("boundary", runs["boundary"] + 1) or [],
        )
        registry.run_boundary(0)
        assert runs == {"every": 1, "nth": 1, "boundary": 1}

    def test_engine_watcher_honors_every_n(self):
        engine = Engine()
        registry = InvariantRegistry()
        counts = {"every": 0, "nth": 0, "boundary": 0}
        registry.register(
            "c.every", lambda now: counts.__setitem__("every", counts["every"] + 1) or [],
            trigger=Trigger.EVERY_EVENT,
        )
        registry.register(
            "c.nth", lambda now: counts.__setitem__("nth", counts["nth"] + 1) or [],
            trigger=Trigger.EVERY_N_EVENTS, every_n=4,
        )
        registry.register(
            "c.boundary",
            lambda now: counts.__setitem__("boundary", counts["boundary"] + 1) or [],
        )
        registry.attach(engine)
        for t in range(1, 9):
            engine.schedule_at(t * 100, lambda: None)
        engine.run()
        assert counts["every"] == 8
        assert counts["nth"] == 2  # events 4 and 8
        assert counts["boundary"] == 0  # boundary-only: never per-event
        assert registry.events_seen == 8

    def test_bad_every_n_rejected(self):
        with pytest.raises(ValueError):
            InvariantRegistry().register("x", lambda now: [], every_n=0)


class TestReporting:
    def test_violation_carries_span_context_and_obs_instant(self):
        obs = Observability(Tracer(), MetricRegistry())
        registry = InvariantRegistry(obs=obs)
        span = obs.tracer.open_span("check.cycle", 0, setup="horse")
        registry.report("checker.x", ["queue exploded"], 42, context="ctx")
        span.close(0)
        assert len(registry.violations) == 1
        violation = registry.violations[0]
        assert violation.span_name == "check.cycle"
        assert violation.span_id == span.span.span_id
        assert "checker.x" in violation.render()
        assert "ctx" in violation.render()
        assert "span check.cycle#" in violation.render()
        instants = obs.tracer.find("check.violation")
        assert len(instants) == 1
        assert instants[0].attrs["message"] == "queue exploded"
        counter = obs.metrics.counter("check.violations")
        assert counter.value == 1

    def test_clean_checkers_report_nothing(self):
        registry = InvariantRegistry()
        registry.register("c.ok", lambda now: [])
        assert registry.run_boundary(0) == []
        assert registry.ok


class TestBuiltinCheckers:
    def test_runqueue_checker_flags_size_drift(self):
        virt, _, _, _ = make_paused_pair()
        check = runqueue_checker(virt.host)
        assert check(0) == []
        queue = virt.host.general_runqueues()[0]
        queue.entities._size += 1
        assert any("size counter" in m for m in check(0))

    def test_lifecycle_checker_flags_paused_sandbox_on_queue(self):
        virt, horse, running, paused = make_paused_pair()
        check = lifecycle_checker(virt.host, [running, paused])
        assert check(0) == []
        # Illegally splice one of the paused sandbox's vCPUs back in.
        queue = virt.host.general_runqueues()[0]
        queue.entities.insert_sorted(paused.vcpus[0])
        problems = check(0)
        assert any("paused but vCPU" in m for m in problems)

    def test_lifecycle_checker_flags_runnable_vcpu_off_queue(self):
        virt, horse, running, paused = make_paused_pair()
        vcpu = running.vcpus[0]
        queue = virt.host.runqueues[vcpu.runqueue_id]
        queue.entities.remove(vcpu)  # lose it without updating state
        problems = lifecycle_checker(virt.host, [running, paused])(0)
        assert any("on no queue" in m for m in problems)

    def test_event_heap_checker_flags_past_events(self):
        engine = Engine()
        engine.schedule_at(100, lambda: None)
        check = event_heap_checker(engine)
        assert check(engine.now) == []
        engine.clock.advance_to(200)  # leave the event stranded at 100
        assert any("before now" in m for m in check(engine.now))

    def test_dvfs_checker_flags_future_samples(self):
        virt, _, _, _ = make_paused_pair()
        check = dvfs_sample_checker(virt.host)
        assert check(10_000_000) == []
        virt.host.general_runqueues()[0].load.last_update_ns = 99_000_000
        assert any("clock-skewed" in m for m in check(10_000_000))

    def test_p2sm_freshness_via_default_registry(self):
        virt, horse, running, paused = make_paused_pair()
        registry = default_registry(
            host=virt.host,
            sandboxes=[running, paused],
            ull_manager=horse.ull,
        )
        assert registry.run_boundary(0) == []
        # Stale precompute: mutate the queue without refreshing.
        queue = horse.ull.queue(paused.assigned_ull_runqueue)
        queue.entities.insert_sorted(running.vcpus[0])
        found = registry.run_boundary(0)
        assert any(v.checker == "invariant.p2sm_freshness" for v in found)

    def test_pool_checker_flags_non_paused_storage(self):
        from repro.faas import FaaSPlatform, FunctionSpec
        from repro.workloads import FirewallWorkload

        faas = FaaSPlatform.build("firecracker", seed=0)
        faas.register(FunctionSpec("fw", FirewallWorkload()))
        faas.provision_warm("fw", count=1, use_horse=True)
        check = pool_checker(faas.pool)
        assert check(0) == []
        pooled = faas.pool.idle_sandboxes("fw")[0]
        pooled.state = type(pooled.state).RUNNING  # corrupt directly
        assert any("RUNNING" in m or "running" in m for m in check(0))
