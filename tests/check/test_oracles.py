"""Differential resume oracles: shadow replay of order and load."""

import pytest

from repro.check import (
    DEFAULT_MAX_ULPS,
    snapshot_before_resume,
    verify_resume,
)
from repro.core.coalesce import CoalescedUpdate, ulps_apart
from repro.core.hot_resume import HorseConfig, HorsePauseResume
from repro.hypervisor.platform import firecracker_platform
from repro.hypervisor.sandbox import Sandbox


def paused_on_populated_queue(config=None, vcpus=3):
    """A HORSE-paused sandbox whose reserved queue already holds a
    resident sandbox's vCPUs (the interesting merge case)."""
    virt = firecracker_platform()
    horse = HorsePauseResume(
        virt.host, virt.policy, virt.costs,
        config=config or HorseConfig.full(),
    )
    resident = Sandbox(vcpus=2, memory_mb=64, is_ull=True)
    virt.vanilla.place_initial(resident, 0)
    horse.pause(resident, 0)
    horse.resume(resident, 0)
    target = Sandbox(vcpus=vcpus, memory_mb=64, is_ull=True)
    virt.vanilla.place_initial(target, 0)
    horse.pause(target, 0)
    return horse, target


class TestSnapshot:
    def test_snapshot_captures_pre_state(self):
        horse, target = paused_on_populated_queue()
        snapshot = snapshot_before_resume(horse, target)
        assert snapshot is not None
        assert snapshot.sandbox_id == target.sandbox_id
        assert len(snapshot.pre_order) == 2   # the resident's vCPUs
        assert len(snapshot.merge_order) == 3
        assert len(snapshot.weights) == 3
        assert snapshot.coalescing_enabled and snapshot.p2sm_enabled

    def test_unassigned_sandbox_yields_no_snapshot(self):
        virt = firecracker_platform()
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        sandbox = Sandbox(vcpus=1, memory_mb=64, is_ull=True)
        virt.vanilla.place_initial(sandbox, 0)
        virt.vanilla.pause(sandbox, 0)  # vanilla pause: no assignment
        assert snapshot_before_resume(horse, sandbox) is None


class TestVerify:
    @pytest.mark.parametrize(
        "config",
        [HorseConfig.full(), HorseConfig.ppsm_only(), HorseConfig.coalescing_only()],
        ids=["horse", "ppsm", "coal"],
    )
    def test_clean_resume_passes_both_oracles(self, config):
        horse, target = paused_on_populated_queue(config)
        snapshot = snapshot_before_resume(horse, target)
        horse.resume(target, 0)
        assert verify_resume(snapshot, horse, 0) == []

    def test_order_oracle_catches_a_shuffled_queue(self):
        horse, target = paused_on_populated_queue()
        snapshot = snapshot_before_resume(horse, target)
        horse.resume(target, 0)
        queue = horse.ull.queue(snapshot.queue_id)
        # All keys are equal here, so re-inserting the head lands it
        # after its equals: still sorted, but FIFO order is broken.
        first = queue.entities.pop_first()
        queue.entities.insert_sorted(first)
        problems = verify_resume(snapshot, horse, 0)
        assert any("order diverges" in p for p in problems)

    def test_order_oracle_reports_structural_corruption(self):
        horse, target = paused_on_populated_queue()
        snapshot = snapshot_before_resume(horse, target)
        horse.resume(target, 0)
        queue = horse.ull.queue(snapshot.queue_id)
        queue.entities._size += 2
        problems = verify_resume(snapshot, horse, 0)
        assert any("structurally corrupt" in p for p in problems)

    def test_load_oracle_catches_a_perturbed_coalesced_load(self):
        horse, target = paused_on_populated_queue()
        snapshot = snapshot_before_resume(horse, target)
        horse.resume(target, 0)
        queue = horse.ull.queue(snapshot.queue_id)
        queue.load.value += 1.0e-6
        problems = verify_resume(snapshot, horse, 0)
        assert any("not" in p and "bit-identical" in p for p in problems)

    def test_load_oracle_exact_for_iterated_path(self):
        horse, target = paused_on_populated_queue(HorseConfig.ppsm_only())
        snapshot = snapshot_before_resume(horse, target)
        horse.resume(target, 0)
        queue = horse.ull.queue(snapshot.queue_id)
        # Even a 1-ULP nudge must be flagged on the iterated path.
        import math
        queue.load.value = math.nextafter(queue.load.value, math.inf)
        problems = verify_resume(snapshot, horse, 0)
        assert any("diverges from" in p for p in problems)


class TestUlps:
    def test_identical_floats_are_zero_apart(self):
        assert ulps_apart(1.5, 1.5) == 0
        assert ulps_apart(0.0, -0.0) == 0

    def test_adjacent_floats_are_one_apart(self):
        import math
        x = 1234.5678
        assert ulps_apart(x, math.nextafter(x, math.inf)) == 1
        assert ulps_apart(x, math.nextafter(x, -math.inf)) == 1

    def test_nan_is_maximally_far(self):
        assert ulps_apart(float("nan"), 1.0) > DEFAULT_MAX_ULPS

    def test_sign_straddle_counts_through_zero(self):
        import math
        tiny = math.ulp(0.0)
        assert ulps_apart(tiny, -tiny) == 2

    def test_identity_update_means_no_fold(self):
        update = CoalescedUpdate(alpha_n=1.0, beta_sum=0.0, n=4)
        assert update.apply(123.25) == 123.25
