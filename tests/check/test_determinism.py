"""Determinism regression: same seed, byte-identical traces.

The engine's contract says a run is bit-for-bit reproducible from the
schedule and the seeds.  The strongest cheap probe of that contract is
the exported JSONL trace: every span, every attribute, every ordering
decision funnels into it.  Two *separate processes* must produce
byte-identical files — separate processes because the sandbox/vCPU id
counters are process-global, so an in-process rerun would trivially
differ.
"""

import filecmp
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_traced_figure3(out_dir: Path) -> Path:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    subprocess.run(
        [
            sys.executable, "-m", "repro", "trace", "figure3",
            "--fast", "--seed", "0", "--out-dir", str(out_dir),
        ],
        check=True,
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    return out_dir / "figure3.trace.jsonl"


class TestTraceDeterminism:
    def test_two_runs_same_seed_byte_identical_jsonl(self, tmp_path):
        first = run_traced_figure3(tmp_path / "run1")
        second = run_traced_figure3(tmp_path / "run2")
        assert first.exists() and second.exists()
        assert first.stat().st_size > 0
        assert filecmp.cmp(first, second, shallow=False), (
            "same seed produced different JSONL traces — "
            "nondeterminism crept into the resume hot path"
        )
        # The Chrome JSON export must be deterministic too.
        assert filecmp.cmp(
            tmp_path / "run1" / "figure3.trace.json",
            tmp_path / "run2" / "figure3.trace.json",
            shallow=False,
        )
