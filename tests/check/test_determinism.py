"""Determinism regression: same seed, byte-identical traces.

The engine's contract says a run is bit-for-bit reproducible from the
schedule and the seeds.  The strongest cheap probe of that contract is
the exported JSONL trace: every span, every attribute, every ordering
decision funnels into it.  Two *separate processes* must produce
byte-identical files — separate processes because the sandbox/vCPU id
counters are process-global, so an in-process rerun would trivially
differ.
"""

import filecmp
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_traced_figure3(out_dir: Path) -> Path:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    subprocess.run(
        [
            sys.executable, "-m", "repro", "trace", "figure3",
            "--fast", "--seed", "0", "--out-dir", str(out_dir),
        ],
        check=True,
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    return out_dir / "figure3.trace.jsonl"


def run_sharded_chaos_cli(out_path: Path, shards: int, seed: int) -> bytes:
    """One subprocess run of the sharded chaos study; returns stdout."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro", "chaos", "cluster",
            "--shards", str(shards), "--groups", "4", "--hosts", "2",
            "--requests", "80", "--seed", str(seed),
            "--trace-out", str(out_path),
        ],
        check=True,
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
    )
    return completed.stdout


class TestTraceDeterminism:
    def test_two_runs_same_seed_byte_identical_jsonl(self, tmp_path):
        first = run_traced_figure3(tmp_path / "run1")
        second = run_traced_figure3(tmp_path / "run2")
        assert first.exists() and second.exists()
        assert first.stat().st_size > 0
        assert filecmp.cmp(first, second, shallow=False), (
            "same seed produced different JSONL traces — "
            "nondeterminism crept into the resume hot path"
        )
        # The Chrome JSON export must be deterministic too.
        assert filecmp.cmp(
            tmp_path / "run1" / "figure3.trace.json",
            tmp_path / "run2" / "figure3.trace.json",
            shallow=False,
        )


class TestShardedTraceDeterminism:
    def test_two_sharded_runs_same_seed_byte_identical(self, tmp_path):
        """Two subprocess runs of ``repro chaos cluster --shards 4``:
        byte-identical stdout and JSONL trace.  Subprocesses, not
        in-process reruns, because the sandbox/vCPU id counters are
        process-global *and* each run forks its own worker pool — this
        is the path CI's shard job exercises."""
        first_trace = tmp_path / "first.jsonl"
        second_trace = tmp_path / "second.jsonl"
        first_out = run_sharded_chaos_cli(first_trace, shards=4, seed=7)
        second_out = run_sharded_chaos_cli(second_trace, shards=4, seed=7)
        assert first_out == second_out
        assert first_trace.stat().st_size > 0
        assert filecmp.cmp(first_trace, second_trace, shallow=False), (
            "same seed, same shard count produced different merged "
            "traces — the sharded path lost determinism"
        )

    def test_worker_count_never_reaches_the_artifacts(self, tmp_path):
        """shards=4 vs shards=1 from separate processes: the invariance
        contract at the CLI boundary (the property suite covers the
        in-process layers)."""
        parallel_trace = tmp_path / "parallel.jsonl"
        serial_trace = tmp_path / "serial.jsonl"
        parallel_out = run_sharded_chaos_cli(parallel_trace, shards=4, seed=3)
        serial_out = run_sharded_chaos_cli(serial_trace, shards=1, seed=3)
        assert parallel_out == serial_out
        assert filecmp.cmp(parallel_trace, serial_trace, shallow=False)
