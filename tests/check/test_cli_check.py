"""The ``python -m repro check`` command."""

from repro.cli import main


class TestCheckCommand:
    def test_clean_check_exits_zero_and_reports(self, capsys):
        code = main(["check", "figure3", "--fast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "pause/resume cycles" in out
        assert "all invariants held" in out

    def test_fault_run_exits_one_with_span_context(self, capsys):
        code = main(
            ["check", "figure3", "--fast", "--fault", "skip_merge_thread"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "injected faults:" in out
        assert "skip_merge_thread" in out
        assert "violations:" in out
        # Span context from the per-cycle check.cycle span.
        assert "span check.cycle#" in out

    def test_unknown_experiment_exits_two(self, capsys):
        code = main(["check", "figure9"])
        err = capsys.readouterr().err
        assert code == 2
        assert "no checked runner" in err

    def test_unknown_fault_kind_is_a_clean_error(self, capsys):
        code = main(["check", "figure3", "--fast", "--fault", "nope"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown fault kind" in err
