"""Workload base helpers and the ull_workloads factory."""

import random

import pytest

from repro.workloads import ull_workloads
from repro.workloads.base import WorkloadCategory, truncated_normal_ns


class TestCategories:
    def test_ull_categories(self):
        assert WorkloadCategory.CATEGORY_1.is_ull
        assert WorkloadCategory.CATEGORY_2.is_ull
        assert WorkloadCategory.CATEGORY_3.is_ull
        assert not WorkloadCategory.LONG_RUNNING.is_ull
        assert not WorkloadCategory.BACKGROUND.is_ull


class TestTruncatedNormal:
    def test_floor_enforced(self):
        rng = random.Random(0)
        samples = [
            truncated_normal_ns(rng, mean_ns=100, rel_std=3.0, floor_ns=50)
            for _ in range(500)
        ]
        assert min(samples) >= 50

    def test_returns_int(self):
        value = truncated_normal_ns(random.Random(0), 100.0, 0.1, 10.0)
        assert isinstance(value, int)

    def test_mean_approximately_respected(self):
        rng = random.Random(1)
        samples = [
            truncated_normal_ns(rng, mean_ns=10_000, rel_std=0.05, floor_ns=1)
            for _ in range(3000)
        ]
        assert sum(samples) / len(samples) == pytest.approx(10_000, rel=0.02)


class TestUllWorkloadsFactory:
    def test_three_categories_in_order(self):
        workloads = ull_workloads()
        assert [w.category for w in workloads] == [
            WorkloadCategory.CATEGORY_1,
            WorkloadCategory.CATEGORY_2,
            WorkloadCategory.CATEGORY_3,
        ]

    def test_all_ull(self):
        assert all(w.is_ull for w in ull_workloads())

    def test_names_unique(self):
        names = [w.name for w in ull_workloads()]
        assert len(set(names)) == 3

    def test_fresh_instances_each_call(self):
        assert ull_workloads()[0] is not ull_workloads()[0]

    def test_mean_durations_match_table1(self):
        """Table 1's execution rows: ~17 us, ~1.5 us, ~0.7 us."""
        rng = random.Random(2)
        expected = (17_000, 1_500, 700)
        for workload, target in zip(ull_workloads(), expected):
            samples = [workload.sample_duration_ns(rng) for _ in range(2000)]
            assert sum(samples) / len(samples) == pytest.approx(target, rel=0.06)
