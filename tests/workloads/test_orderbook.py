"""Finance order-risk workload."""

import random

import pytest

from repro.workloads.base import WorkloadCategory
from repro.workloads.orderbook import (
    MarketState,
    Order,
    OrderRiskWorkload,
    RiskVerdict,
    Side,
)


def make_order(symbol="ACME", price=100.0, quantity=10, side=Side.BUY):
    return Order(symbol=symbol, side=side, price=price, quantity=quantity)


class TestOrderValidation:
    def test_valid_order(self):
        order = make_order()
        assert order.notional == 1000.0

    def test_nonpositive_price_rejected(self):
        with pytest.raises(ValueError):
            make_order(price=0.0)

    def test_nonpositive_quantity_rejected(self):
        with pytest.raises(ValueError):
            make_order(quantity=0)


class TestRiskChecks:
    def test_accepts_order_inside_all_limits(self):
        decision = OrderRiskWorkload().execute(make_order())
        assert decision.accepted
        assert decision.verdict is RiskVerdict.ACCEPT

    def test_rejects_unknown_symbol(self):
        decision = OrderRiskWorkload().execute(make_order(symbol="GHOST"))
        assert decision.verdict is RiskVerdict.REJECT_UNKNOWN_SYMBOL

    def test_rejects_price_above_band(self):
        decision = OrderRiskWorkload().execute(make_order(price=106.0))
        assert decision.verdict is RiskVerdict.REJECT_PRICE_BAND

    def test_rejects_price_below_band(self):
        decision = OrderRiskWorkload().execute(make_order(price=94.0))
        assert decision.verdict is RiskVerdict.REJECT_PRICE_BAND

    def test_band_edges_accepted(self):
        workload = OrderRiskWorkload()
        assert workload.execute(make_order(price=95.0)).accepted
        assert workload.execute(make_order(price=105.0)).accepted

    def test_rejects_oversized_quantity(self):
        decision = OrderRiskWorkload().execute(make_order(quantity=10_001))
        assert decision.verdict is RiskVerdict.REJECT_MAX_QUANTITY

    def test_rejects_notional_over_cap(self):
        # 10_000 shares at 101 = 1.01M > 1M cap (quantity itself is legal).
        decision = OrderRiskWorkload().execute(
            make_order(price=101.0, quantity=10_000)
        )
        assert decision.verdict is RiskVerdict.REJECT_NOTIONAL_CAP

    def test_custom_market(self):
        market = MarketState(mid_prices={"XYZ": 10.0})
        workload = OrderRiskWorkload(market=market)
        assert workload.execute(make_order(symbol="XYZ", price=10.1)).accepted

    def test_wrong_payload_rejected(self):
        with pytest.raises(TypeError):
            OrderRiskWorkload().execute("order")

    def test_bad_band_rejected(self):
        with pytest.raises(ValueError):
            OrderRiskWorkload(price_band=1.5)


class TestEnvelope:
    def test_category_2(self):
        assert OrderRiskWorkload().category is WorkloadCategory.CATEGORY_2

    def test_mean_duration_near_1_8us(self):
        workload = OrderRiskWorkload()
        rng = random.Random(3)
        samples = [workload.sample_duration_ns(rng) for _ in range(1000)]
        assert sum(samples) / len(samples) == pytest.approx(1800, rel=0.06)

    def test_example_payloads_execute(self):
        workload = OrderRiskWorkload()
        rng = random.Random(4)
        verdicts = {workload.execute(workload.example_payload(rng)).verdict
                    for _ in range(200)}
        # the generator should produce both accepts and band rejects
        assert RiskVerdict.ACCEPT in verdicts
        assert RiskVerdict.REJECT_PRICE_BAND in verdicts
