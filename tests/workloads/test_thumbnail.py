"""Thumbnail workload: real downscaling over the object store."""

import random

import pytest

from repro.sim.units import seconds
from repro.workloads.base import WorkloadCategory
from repro.workloads.thumbnail import (
    Image,
    ObjectStore,
    ThumbnailRequest,
    ThumbnailWorkload,
)


def checkerboard(width, height):
    return Image(
        width=width,
        height=height,
        pixels=tuple((x + y) % 2 * 255 for y in range(height) for x in range(width)),
    )


class TestImage:
    def test_valid_image(self):
        image = checkerboard(4, 2)
        assert image.at(0, 0) == 0
        assert image.at(1, 0) == 255

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Image(width=0, height=2, pixels=())

    def test_mismatched_buffer_rejected(self):
        with pytest.raises(ValueError):
            Image(width=2, height=2, pixels=(1, 2, 3))


class TestObjectStore:
    def test_put_get_roundtrip(self):
        store = ObjectStore()
        image = checkerboard(2, 2)
        store.put("k", image)
        assert store.get("k") is image
        assert "k" in store

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            ObjectStore().get("nope")

    def test_keys_sorted(self):
        store = ObjectStore()
        store.put("b", checkerboard(1, 1))
        store.put("a", checkerboard(1, 1))
        assert store.keys() == ["a", "b"]


class TestThumbnailing:
    def test_downscale_dimensions(self):
        workload = ThumbnailWorkload()
        workload.store.put("src", checkerboard(64, 64))
        thumb = workload.execute(ThumbnailRequest("src", "dst", 8, 8))
        assert (thumb.width, thumb.height) == (8, 8)
        assert len(thumb.pixels) == 64

    def test_result_stored_under_target_key(self):
        workload = ThumbnailWorkload()
        workload.store.put("src", checkerboard(16, 16))
        workload.execute(ThumbnailRequest("src", "thumbs/out", 4, 4))
        assert "thumbs/out" in workload.store

    def test_uniform_image_stays_uniform(self):
        workload = ThumbnailWorkload()
        workload.store.put(
            "grey", Image(width=10, height=10, pixels=(128,) * 100)
        )
        thumb = workload.execute(ThumbnailRequest("grey", "t", 3, 3))
        assert set(thumb.pixels) == {128}

    def test_identity_scale_preserves_pixels(self):
        workload = ThumbnailWorkload()
        source = checkerboard(6, 6)
        workload.store.put("src", source)
        thumb = workload.execute(ThumbnailRequest("src", "t", 6, 6))
        assert thumb.pixels == source.pixels

    def test_missing_source_raises(self):
        with pytest.raises(KeyError):
            ThumbnailWorkload().execute(ThumbnailRequest("ghost", "t", 2, 2))

    def test_bad_target_dimensions_rejected(self):
        workload = ThumbnailWorkload()
        workload.store.put("src", checkerboard(4, 4))
        with pytest.raises(ValueError):
            workload.execute(ThumbnailRequest("src", "t", 0, 4))


class TestEnvelope:
    def test_long_running_category(self):
        workload = ThumbnailWorkload()
        assert workload.category is WorkloadCategory.LONG_RUNNING
        assert not workload.is_ull

    def test_durations_exceed_1s_on_average(self):
        """Paper §5.4 targets the >1 s function class."""
        workload = ThumbnailWorkload()
        rng = random.Random(8)
        samples = [workload.sample_duration_ns(rng) for _ in range(500)]
        assert sum(samples) / len(samples) > seconds(1)

    def test_example_payload_executes(self):
        workload = ThumbnailWorkload()
        rng = random.Random(9)
        thumb = workload.execute(workload.example_payload(rng))
        assert (thumb.width, thumb.height) == (32, 32)
