"""Firewall workload: real allow-list semantics + duration envelope."""

import random

import pytest

from repro.sim.units import microseconds
from repro.workloads.base import WorkloadCategory
from repro.workloads.firewall import FirewallWorkload, RequestHeader


class TestRequestHeader:
    def test_valid_header(self):
        header = RequestHeader(src_ip="10.0.0.5", dst_ip="1.2.3.4", dst_port=443)
        assert header.dst_port == 443

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            RequestHeader(src_ip="10.0.0.5", dst_ip="1.2.3.4", dst_port=70000)


class TestDecision:
    def test_allows_listed_subnet_and_port(self):
        firewall = FirewallWorkload()
        header = RequestHeader(src_ip="10.0.0.42", dst_ip="x", dst_port=443)
        decision = firewall.execute(header)
        assert decision.allowed
        assert "10.0.0/24" in decision.rule

    def test_denies_unlisted_port(self):
        firewall = FirewallWorkload()
        header = RequestHeader(src_ip="10.0.0.42", dst_ip="x", dst_port=23)
        decision = firewall.execute(header)
        assert not decision.allowed
        assert decision.rule == "default-deny"

    def test_denies_unlisted_subnet(self):
        firewall = FirewallWorkload()
        header = RequestHeader(src_ip="8.8.8.8", dst_ip="x", dst_port=443)
        assert not firewall.execute(header).allowed

    def test_custom_allow_list(self):
        firewall = FirewallWorkload(allow_list=[("1.2.3", 80)])
        assert firewall.execute(
            RequestHeader(src_ip="1.2.3.9", dst_ip="x", dst_port=80)
        ).allowed
        assert not firewall.execute(
            RequestHeader(src_ip="10.0.0.9", dst_ip="x", dst_port=443)
        ).allowed

    def test_wrong_payload_type_rejected(self):
        with pytest.raises(TypeError):
            FirewallWorkload().execute("not a header")


class TestEnvelope:
    def test_category_1(self):
        assert FirewallWorkload().category is WorkloadCategory.CATEGORY_1
        assert FirewallWorkload().is_ull

    def test_durations_at_most_20us(self):
        firewall = FirewallWorkload()
        rng = random.Random(1)
        for _ in range(200):
            assert firewall.sample_duration_ns(rng) <= microseconds(20)

    def test_mean_duration_near_17us(self):
        firewall = FirewallWorkload()
        rng = random.Random(2)
        samples = [firewall.sample_duration_ns(rng) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(
            microseconds(17), rel=0.05
        )

    def test_example_payloads_execute(self):
        firewall = FirewallWorkload()
        rng = random.Random(3)
        for _ in range(50):
            firewall.execute(firewall.example_payload(rng))
