"""sysbench-style CPU workload."""

import random

import pytest

from repro.workloads.base import WorkloadCategory
from repro.workloads.sysbench import (
    PrimeRequest,
    SysbenchCpuWorkload,
    primes_up_to,
)


class TestPrimeKernel:
    def test_known_primes(self):
        assert primes_up_to(20) == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_limit_below_two(self):
        assert primes_up_to(1) == []
        assert primes_up_to(0) == []

    def test_limit_is_inclusive(self):
        assert primes_up_to(13)[-1] == 13

    def test_prime_count_up_to_1000(self):
        assert len(primes_up_to(1000)) == 168  # classic pi(1000)


class TestWorkload:
    def test_execute_counts_primes(self):
        workload = SysbenchCpuWorkload()
        assert workload.execute(PrimeRequest(limit=100)) == 25

    def test_wrong_payload_rejected(self):
        with pytest.raises(TypeError):
            SysbenchCpuWorkload().execute(100)

    def test_background_category(self):
        workload = SysbenchCpuWorkload()
        assert workload.category is WorkloadCategory.BACKGROUND
        assert not workload.is_ull

    def test_example_payload_executes(self):
        workload = SysbenchCpuWorkload()
        result = workload.execute(workload.example_payload(random.Random(0)))
        assert result > 0

    def test_durations_positive(self):
        workload = SysbenchCpuWorkload()
        rng = random.Random(1)
        assert all(workload.sample_duration_ns(rng) > 0 for _ in range(100))
