"""NAT workload: rewrite semantics + duration envelope."""

import random

import pytest

from repro.sim.units import nanoseconds
from repro.workloads.base import WorkloadCategory
from repro.workloads.firewall import RequestHeader
from repro.workloads.nat import NatError, NatRule, NatWorkload


class TestRules:
    def test_rewrites_matching_header(self):
        nat = NatWorkload()
        header = RequestHeader(
            src_ip="203.0.113.5", dst_ip="198.51.100.10", dst_port=80
        )
        rewritten = nat.execute(header)
        assert rewritten.dst_ip == "10.0.0.10"
        assert rewritten.dst_port == 8080
        assert rewritten.src_ip == header.src_ip  # untouched

    def test_original_header_not_mutated(self):
        nat = NatWorkload()
        header = RequestHeader(
            src_ip="203.0.113.5", dst_ip="198.51.100.10", dst_port=80
        )
        nat.execute(header)
        assert header.dst_ip == "198.51.100.10"

    def test_unmatched_header_raises(self):
        nat = NatWorkload()
        with pytest.raises(NatError):
            nat.execute(RequestHeader(src_ip="1.1.1.1", dst_ip="9.9.9.9", dst_port=1))

    def test_custom_rules(self):
        nat = NatWorkload(rules={("2.2.2.2", 443): NatRule("10.1.1.1", 4430)})
        out = nat.execute(RequestHeader(src_ip="x", dst_ip="2.2.2.2", dst_port=443))
        assert (out.dst_ip, out.dst_port) == ("10.1.1.1", 4430)

    def test_bad_rule_port_rejected(self):
        with pytest.raises(ValueError):
            NatRule("10.0.0.1", -1)

    def test_wrong_payload_type_rejected(self):
        with pytest.raises(TypeError):
            NatWorkload().execute(42)


class TestEnvelope:
    def test_category_2(self):
        assert NatWorkload().category is WorkloadCategory.CATEGORY_2

    def test_mean_duration_near_1_5us(self):
        nat = NatWorkload()
        rng = random.Random(4)
        samples = [nat.sample_duration_ns(rng) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(
            nanoseconds(1500), rel=0.05
        )

    def test_example_payloads_always_match_a_rule(self):
        nat = NatWorkload()
        rng = random.Random(5)
        for _ in range(50):
            nat.execute(nat.example_payload(rng))
