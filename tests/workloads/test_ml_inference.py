"""ML-inference workload: real MLP forward pass + envelope."""

import random

import pytest

from repro.sim.units import microseconds
from repro.workloads.base import WorkloadCategory
from repro.workloads.ml_inference import (
    INPUT_FEATURES,
    InferenceRequest,
    MlInferenceWorkload,
)


class TestRequestValidation:
    def test_valid_request(self):
        request = InferenceRequest(features=(0.0,) * INPUT_FEATURES)
        assert len(request.features) == 8

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            InferenceRequest(features=(0.0, 1.0))


class TestInference:
    def test_score_is_probability(self):
        workload = MlInferenceWorkload()
        rng = random.Random(0)
        for _ in range(100):
            result = workload.execute(workload.example_payload(rng))
            assert 0.0 <= result.score <= 1.0

    def test_deterministic_model(self):
        request = InferenceRequest(features=(1.0, -1.0, 0.5, 0.0, 2.0, -2.0, 0.1, 0.9))
        a = MlInferenceWorkload(model_seed=7).execute(request)
        b = MlInferenceWorkload(model_seed=7).execute(request)
        assert a.score == b.score

    def test_different_models_differ(self):
        request = InferenceRequest(features=(1.0,) * INPUT_FEATURES)
        a = MlInferenceWorkload(model_seed=1).execute(request)
        b = MlInferenceWorkload(model_seed=2).execute(request)
        assert a.score != b.score

    def test_flag_follows_threshold(self):
        workload = MlInferenceWorkload(threshold=0.0)
        request = workload.example_payload(random.Random(1))
        assert workload.execute(request).flagged  # every score >= 0

    def test_wrong_payload_rejected(self):
        with pytest.raises(TypeError):
            MlInferenceWorkload().execute([1.0] * 8)

    def test_relu_hidden_layer(self):
        """Zero input -> hidden = ReLU(bias); output depends only on
        positive biases."""
        workload = MlInferenceWorkload(model_seed=3)
        result = workload.execute(InferenceRequest(features=(0.0,) * 8))
        assert 0.0 <= result.score <= 1.0


class TestEnvelope:
    def test_category_1_envelope(self):
        workload = MlInferenceWorkload()
        assert workload.category is WorkloadCategory.CATEGORY_1
        rng = random.Random(2)
        samples = [workload.sample_duration_ns(rng) for _ in range(500)]
        assert max(samples) <= microseconds(20)
        assert sum(samples) / len(samples) == pytest.approx(
            microseconds(12), rel=0.08
        )
