"""Array-filter workload (Category 3)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.units import nanoseconds
from repro.workloads.array_filter import ARRAY_SIZE, ArrayFilterWorkload, FilterRequest
from repro.workloads.base import WorkloadCategory


class TestSemantics:
    def test_returns_indexes_above_threshold(self):
        workload = ArrayFilterWorkload()
        request = FilterRequest(values=[1, 5, 3, 10], threshold=3)
        assert workload.execute(request) == [1, 3]

    def test_strictly_greater(self):
        workload = ArrayFilterWorkload()
        assert workload.execute(FilterRequest(values=[3, 3], threshold=3)) == []

    def test_empty_array(self):
        assert ArrayFilterWorkload().execute(FilterRequest([], 0)) == []

    def test_all_match(self):
        workload = ArrayFilterWorkload()
        assert workload.execute(FilterRequest([5, 6], 0)) == [0, 1]

    def test_wrong_payload_rejected(self):
        with pytest.raises(TypeError):
            ArrayFilterWorkload().execute([1, 2, 3])

    @given(
        st.lists(st.integers(-1000, 1000), max_size=200),
        st.integers(-1000, 1000),
    )
    @settings(max_examples=60)
    def test_matches_reference_filter(self, values, threshold):
        result = ArrayFilterWorkload().execute(FilterRequest(values, threshold))
        assert result == [i for i, v in enumerate(values) if v > threshold]
        # indexes strictly ascending
        assert all(a < b for a, b in zip(result, result[1:]))


class TestEnvelope:
    def test_category_3(self):
        assert ArrayFilterWorkload().category is WorkloadCategory.CATEGORY_3

    def test_mean_duration_near_700ns(self):
        workload = ArrayFilterWorkload()
        rng = random.Random(6)
        samples = [workload.sample_duration_ns(rng) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(
            nanoseconds(700), rel=0.06
        )

    def test_example_payload_uses_3000_element_array(self):
        """The paper specifies 3000 integers."""
        workload = ArrayFilterWorkload()
        payload = workload.example_payload(random.Random(7))
        assert len(payload.values) == ARRAY_SIZE == 3000
        workload.execute(payload)
