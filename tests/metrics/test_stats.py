"""Statistics: percentiles, CIs, summaries."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import (
    ConfidenceInterval,
    Summary,
    confidence_interval_95,
    mean,
    percentile,
    stddev,
    t_critical_95,
    variance,
)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_variance_known(self):
        assert variance([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            4.571428, rel=1e-5
        )

    def test_variance_single_value_zero(self):
        assert variance([5.0]) == 0.0

    def test_stddev_is_sqrt_variance(self):
        data = [1.0, 3.0, 5.0]
        assert stddev(data) == pytest.approx(math.sqrt(variance(data)))


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_p0_is_min_p100_is_max(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_out_of_range_p_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_matches_numpy_linear_method(self):
        import numpy as np

        data = [12.0, 5.0, 9.0, 1.0, 30.0, 2.0, 18.0]
        for p in (5, 25, 50, 75, 95, 99):
            assert percentile(data, p) == pytest.approx(
                float(np.percentile(data, p))
            )

    @given(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_percentile_bounded_and_monotone(self, data):
        p50 = percentile(data, 50)
        p95 = percentile(data, 95)
        p99 = percentile(data, 99)
        assert min(data) <= p50 <= p95 <= p99 <= max(data)


class TestPercentileEdgeCases:
    def test_n2_p0_and_p100_hit_endpoints(self):
        assert percentile([7.0, 3.0], 0) == 3.0
        assert percentile([7.0, 3.0], 100) == 7.0

    def test_n2_interpolates_between_the_two(self):
        # rank = (p/100) * (n-1) with n=2 is just p/100.
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)
        assert percentile([0.0, 10.0], 50) == pytest.approx(5.0)
        assert percentile([0.0, 10.0], 99) == pytest.approx(9.9)

    def test_p0_p100_exact_even_with_float_noise(self):
        # p=0 / p=100 must return the exact min/max, not an
        # interpolated neighbour.
        data = [0.1 + 0.1 * i for i in range(11)]
        assert percentile(data, 0) == min(data)
        assert percentile(data, 100) == max(data)


class TestConfidenceInterval:
    def test_single_value_zero_width(self):
        ci = confidence_interval_95([5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0

    def test_identical_values_zero_width(self):
        ci = confidence_interval_95([3.0] * 10)
        assert ci.half_width == 0.0

    def test_known_case(self):
        # n=10, std=1 -> half width = 2.262 / sqrt(10)
        data = [0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        ci = confidence_interval_95(data)
        expected = 2.262 * stddev(data) / math.sqrt(10)
        assert ci.half_width == pytest.approx(expected, rel=1e-3)

    def test_bounds(self):
        ci = confidence_interval_95([1.0, 2.0, 3.0])
        assert ci.low == ci.mean - ci.half_width
        assert ci.high == ci.mean + ci.half_width

    def test_relative_half_width(self):
        ci = confidence_interval_95([10.0, 10.0, 10.0])
        assert ci.relative_half_width == 0.0

    def test_t_critical_table_values(self):
        assert t_critical_95(9) == pytest.approx(2.262)
        assert t_critical_95(1) == pytest.approx(12.706)

    def test_t_critical_interpolates(self):
        value = t_critical_95(22)
        assert t_critical_95(25) < value < t_critical_95(20)

    def test_t_critical_df22_linear_between_20_and_25(self):
        # The table jumps from df=20 to df=25; df=22 sits 2/5 along.
        expected = 2.086 + (22 - 20) / (25 - 20) * (2.060 - 2.086)
        assert t_critical_95(22) == pytest.approx(expected)

    def test_relative_half_width_zero_mean(self):
        ci = ConfidenceInterval(mean=0.0, half_width=1.5, n=10)
        assert ci.relative_half_width == 0.0

    def test_t_critical_large_df_is_z(self):
        assert t_critical_95(10_000) == pytest.approx(1.96)

    def test_t_critical_bad_df(self):
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestSummary:
    def test_summary_fields(self):
        summary = Summary.of([1.0, 2.0, 3.0, 4.0])
        assert summary.n == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == 2.5

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary.of([])

    def test_summary_accepts_generators(self):
        summary = Summary.of(float(x) for x in range(10))
        assert summary.n == 10
