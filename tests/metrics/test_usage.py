"""Usage sampling and the CPU work tracker."""

import pytest

from repro.metrics.usage import CpuWorkTracker, UsageSampler
from repro.sim.engine import Engine
from repro.sim.units import milliseconds


class TestUsageSampler:
    def test_samples_at_period(self):
        engine = Engine()
        sampler = UsageSampler(engine, milliseconds(500))
        sampler.add_gauge("x", lambda: 1.0)
        sampler.start()
        engine.run(until=milliseconds(2600))
        assert len(sampler.samples) == 5
        assert [s.time_ns for s in sampler.samples] == [
            milliseconds(500 * i) for i in range(1, 6)
        ]

    def test_gauge_values_recorded(self):
        engine = Engine()
        counter = {"v": 0.0}
        sampler = UsageSampler(engine, milliseconds(100))
        sampler.add_gauge("c", lambda: counter["v"])
        sampler.start()
        engine.schedule_at(milliseconds(150), lambda: counter.update(v=5.0))
        engine.run(until=milliseconds(250))
        assert sampler.series("c") == [0.0, 5.0]

    def test_stop_halts_sampling(self):
        engine = Engine()
        sampler = UsageSampler(engine, milliseconds(100))
        sampler.add_gauge("x", lambda: 1.0)
        sampler.start()
        engine.run(until=milliseconds(250))
        sampler.stop()
        engine.run(until=milliseconds(1000))
        assert len(sampler.samples) == 2

    def test_duplicate_gauge_rejected(self):
        sampler = UsageSampler(Engine(), 100)
        sampler.add_gauge("x", lambda: 0.0)
        with pytest.raises(ValueError):
            sampler.add_gauge("x", lambda: 0.0)

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            UsageSampler(Engine(), 0)

    def test_peak_and_mean(self):
        engine = Engine()
        values = iter([1.0, 5.0, 3.0])
        sampler = UsageSampler(engine, 100)
        sampler.add_gauge("x", lambda: next(values))
        sampler.start()
        engine.run(until=300)
        assert sampler.peak("x") == 5.0
        assert sampler.mean("x") == pytest.approx(3.0)

    def test_peak_without_samples_raises(self):
        sampler = UsageSampler(Engine(), 100)
        with pytest.raises(KeyError):
            sampler.peak("x")

    def test_double_start_is_noop(self):
        engine = Engine()
        sampler = UsageSampler(engine, 100)
        sampler.add_gauge("x", lambda: 1.0)
        sampler.start()
        sampler.start()
        engine.run(until=100)
        assert len(sampler.samples) == 1


class TestCpuWorkTracker:
    def test_charge_accumulates(self):
        tracker = CpuWorkTracker()
        tracker.charge("pause", 100.0)
        tracker.charge("pause", 50.0)
        assert tracker.total("pause") == 150.0

    def test_phases_isolated(self):
        tracker = CpuWorkTracker()
        tracker.charge("a", 1.0)
        tracker.charge("b", 2.0)
        assert tracker.total("a") == 1.0
        assert tracker.grand_total() == 3.0

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            CpuWorkTracker().charge("x", -1.0)

    def test_unknown_phase_zero(self):
        assert CpuWorkTracker().total("ghost") == 0.0

    def test_gauge_reads_live_counter(self):
        tracker = CpuWorkTracker()
        gauge = tracker.gauge("work")
        assert gauge() == 0.0
        tracker.charge("work", 7.0)
        assert gauge() == 7.0
