"""Recorders: series and breakdowns."""

import pytest

from repro.metrics.recorder import Breakdown, BreakdownRecorder, SeriesRecorder


class TestSeriesRecorder:
    def test_record_and_values(self):
        recorder = SeriesRecorder()
        recorder.record("lat", 1.0)
        recorder.record("lat", 2.0)
        assert recorder.values("lat") == [1.0, 2.0]

    def test_extend(self):
        recorder = SeriesRecorder()
        recorder.extend("x", [1, 2, 3])
        assert recorder.values("x") == [1.0, 2.0, 3.0]

    def test_unknown_series_empty(self):
        assert SeriesRecorder().values("nope") == []

    def test_summary(self):
        recorder = SeriesRecorder()
        recorder.extend("x", [1.0, 3.0])
        assert recorder.summary("x").mean == 2.0

    def test_summary_unknown_raises(self):
        with pytest.raises(KeyError):
            SeriesRecorder().summary("nope")

    def test_names_sorted(self):
        recorder = SeriesRecorder()
        recorder.record("b", 1)
        recorder.record("a", 1)
        assert recorder.names() == ["a", "b"]

    def test_len_counts_all(self):
        recorder = SeriesRecorder()
        recorder.extend("a", [1, 2])
        recorder.record("b", 3)
        assert len(recorder) == 3

    def test_clear(self):
        recorder = SeriesRecorder()
        recorder.record("a", 1)
        recorder.clear()
        assert len(recorder) == 0


class TestBreakdown:
    def test_add_and_total(self):
        breakdown = Breakdown()
        breakdown.add("merge", 700)
        breakdown.add("load", 300)
        assert breakdown.total_ns == 1000

    def test_add_accumulates_same_phase(self):
        breakdown = Breakdown()
        breakdown.add("merge", 100)
        breakdown.add("merge", 50)
        assert breakdown.phases["merge"] == 150

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Breakdown().add("x", -1)

    def test_share(self):
        breakdown = Breakdown()
        breakdown.add("a", 875)
        breakdown.add("b", 125)
        assert breakdown.share("a") == pytest.approx(0.875)
        assert breakdown.share("missing") == 0.0

    def test_combined_share(self):
        breakdown = Breakdown()
        breakdown.add("a", 500)
        breakdown.add("b", 300)
        breakdown.add("c", 200)
        assert breakdown.combined_share(["a", "b"]) == pytest.approx(0.8)

    def test_empty_breakdown_shares_zero(self):
        assert Breakdown().share("x") == 0.0


class TestBreakdownRecorder:
    def make(self, pairs_list):
        recorder = BreakdownRecorder()
        for pairs in pairs_list:
            breakdown = Breakdown()
            for phase, ns in pairs:
                breakdown.add(phase, ns)
            recorder.record(breakdown)
        return recorder

    def test_mean_phase_ns(self):
        recorder = self.make([[("a", 10)], [("a", 30)]])
        assert recorder.mean_phase_ns() == {"a": 20.0}

    def test_mean_total(self):
        recorder = self.make([[("a", 10), ("b", 10)], [("a", 20), ("b", 0)]])
        assert recorder.mean_total_ns() == 20.0

    def test_mean_shares_sum_to_one(self):
        recorder = self.make([[("a", 70), ("b", 30)], [("a", 60), ("b", 40)]])
        shares = recorder.mean_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["a"] == pytest.approx(0.65)

    def test_empty_recorder(self):
        recorder = BreakdownRecorder()
        assert recorder.mean_phase_ns() == {}
        assert recorder.mean_total_ns() == 0.0
        assert len(recorder) == 0
