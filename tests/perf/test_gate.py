"""Perf gate: row schema, baseline check logic, CLI plumbing.

The actual throughput numbers are machine-dependent, so the tests here
never assert on speed — they pin the BENCH_sim_kernel.json row schema,
the calibration-normalized regression verdicts, the calendar/heap
speedup gate, and the argument plumbing shared by ``repro bench`` and
``benchmarks/perf_gate.py``.
"""

import json

import pytest

from repro.perf.gate import (
    BENCH_BASELINE,
    BENCHES,
    build_parser,
    check_against_baseline,
    main,
    run_benches,
)


def _row(bench, events_per_sec, seed=7):
    return {
        "bench": bench,
        "events_per_sec": float(events_per_sec),
        "wall_s": 0.1,
        "seed": seed,
        "py": "3.11",
    }


class TestRunBenches:
    def test_rows_match_baseline_schema(self):
        rows = run_benches(quick=True, only=["calibration"])
        assert len(rows) == 1
        row = rows[0]
        assert set(row) == {
            "bench", "events_per_sec", "wall_s", "seed", "py",
            "scheduler", "obs",
        }
        assert row["bench"] == "calibration"
        assert row["events_per_sec"] > 0
        assert row["wall_s"] > 0
        assert row["scheduler"] == "none"
        assert row["obs"] == "off"

    def test_unknown_bench_rejected(self):
        with pytest.raises(ValueError, match="unknown bench"):
            run_benches(only=["warp_drive"])

    def test_expected_suite_members(self):
        assert set(BENCHES) == {
            "calibration",
            "engine_heap_chaos",
            "engine_calendar_chaos",
            "p2sm_merge",
            "coalesced_load",
            "chaos_e2e",
            "chaos_e2e_obs_on",
            "cluster_study_e2e",
            "replay_e2e",
            "cluster_sharded_serial",
            "cluster_sharded",
        }


class TestCheckAgainstBaseline:
    def test_within_tolerance_passes(self):
        rows = [_row("calibration", 100.0), _row("p2sm_merge", 90.0)]
        baseline = [_row("calibration", 100.0), _row("p2sm_merge", 100.0)]
        assert check_against_baseline(rows, baseline, tolerance=0.15, log=lambda _: None)

    def test_regression_beyond_tolerance_fails(self):
        rows = [_row("calibration", 100.0), _row("p2sm_merge", 80.0)]
        baseline = [_row("calibration", 100.0), _row("p2sm_merge", 100.0)]
        assert not check_against_baseline(
            rows, baseline, tolerance=0.15, log=lambda _: None
        )

    def test_calibration_normalizes_slower_machine(self):
        # Half-speed machine, half-speed scores: no regression.
        rows = [_row("calibration", 50.0), _row("p2sm_merge", 50.0)]
        baseline = [_row("calibration", 100.0), _row("p2sm_merge", 100.0)]
        assert check_against_baseline(rows, baseline, tolerance=0.15, log=lambda _: None)

    def test_speedup_gate_passes_and_fails_on_ratio(self):
        baseline = []
        fast = [
            _row("engine_heap_chaos", 100.0),
            _row("engine_calendar_chaos", 210.0),
        ]
        slow = [
            _row("engine_heap_chaos", 100.0),
            _row("engine_calendar_chaos", 140.0),
        ]
        assert check_against_baseline(
            fast, baseline, require_speedup=2.0, log=lambda _: None
        )
        assert not check_against_baseline(
            slow, baseline, require_speedup=2.0, log=lambda _: None
        )

    def test_unknown_current_bench_is_ignored(self):
        rows = [_row("brand_new_bench", 1.0)]
        assert check_against_baseline(rows, [], log=lambda _: None)

    def test_obs_overhead_gate_passes_and_fails_on_budget(self):
        cheap = [_row("chaos_e2e", 100.0), _row("chaos_e2e_obs_on", 97.0)]
        costly = [_row("chaos_e2e", 100.0), _row("chaos_e2e_obs_on", 90.0)]
        assert check_against_baseline(
            cheap, [], max_obs_overhead=0.05, log=lambda _: None
        )
        assert not check_against_baseline(
            costly, [], max_obs_overhead=0.05, log=lambda _: None
        )

    def test_obs_overhead_gate_skipped_without_both_benches(self):
        rows = [_row("chaos_e2e", 100.0)]
        assert check_against_baseline(
            rows, [], max_obs_overhead=0.0, log=lambda _: None
        )

    @staticmethod
    def _sharded_rows(parallel_eps, cores):
        serial = _row("cluster_sharded_serial", 100.0)
        serial.update({"shards": 1, "cores": cores})
        parallel = _row("cluster_sharded", parallel_eps)
        parallel.update({"shards": 4, "cores": cores})
        return [serial, parallel]

    def test_shard_speedup_gate_passes_and_fails_on_ratio(self):
        assert check_against_baseline(
            self._sharded_rows(250.0, cores=4), [],
            require_shard_speedup=2.0, log=lambda _: None,
        )
        assert not check_against_baseline(
            self._sharded_rows(150.0, cores=4), [],
            require_shard_speedup=2.0, log=lambda _: None,
        )

    def test_shard_speedup_gate_skipped_below_core_budget(self):
        # 1 core, 4 workers: scaling is physically unmeasurable, so even
        # a sub-1x ratio must not fail the gate.
        lines = []
        assert check_against_baseline(
            self._sharded_rows(60.0, cores=1), [],
            require_shard_speedup=2.0, log=lines.append,
        )
        assert any("skipped" in line for line in lines)

    def test_shard_speedup_gate_skipped_without_both_benches(self):
        rows = [_row("cluster_sharded", 100.0)]
        assert check_against_baseline(
            rows, [], require_shard_speedup=2.0, log=lambda _: None
        )


class TestCommittedBaseline:
    def test_committed_baseline_has_schema_and_speedup(self):
        with open(BENCH_BASELINE) as handle:
            rows = json.load(handle)
        by_name = {row["bench"]: row for row in rows}
        base_keys = {
            "bench", "events_per_sec", "wall_s", "seed", "py",
            "scheduler", "obs",
        }
        for row in rows:
            if row["bench"].startswith("cluster_sharded"):
                # The sharded pair records its worker layout and the
                # measuring machine's core budget (gate is core-aware).
                assert set(row) == base_keys | {"shards", "cores"}
            else:
                assert set(row) == base_keys
        ratio = (
            by_name["engine_calendar_chaos"]["events_per_sec"]
            / by_name["engine_heap_chaos"]["events_per_sec"]
        )
        assert ratio >= 2.0

    def test_committed_baseline_obs_overhead_within_budget(self):
        with open(BENCH_BASELINE) as handle:
            rows = json.load(handle)
        by_name = {row["bench"]: row for row in rows}
        obs_off = by_name["chaos_e2e"]["events_per_sec"]
        obs_on = by_name["chaos_e2e_obs_on"]["events_per_sec"]
        assert 1.0 - obs_on / obs_off <= 0.05


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.quick is False
        assert args.seed == 7
        assert args.baseline == BENCH_BASELINE
        assert args.tolerance == 0.15
        assert args.require_speedup is None
        assert args.max_obs_overhead is None
        assert args.require_shard_speedup is None

    def test_main_runs_subset_and_writes(self, tmp_path, capsys):
        out = tmp_path / "rows.json"
        code = main(["--quick", "--benches", "calibration", "--write", str(out)])
        assert code == 0
        rows = json.loads(out.read_text())
        assert [row["bench"] for row in rows] == ["calibration"]
        assert "calibration" in capsys.readouterr().out

    def test_main_rejects_unknown_bench(self, capsys):
        assert main(["--benches", "warp_drive"]) == 2

    def test_main_check_against_written_baseline(self, tmp_path, capsys):
        out = tmp_path / "baseline.json"
        assert main(["--quick", "--benches", "calibration", "--write", str(out)]) == 0
        code = main(
            [
                "--quick",
                "--benches",
                "calibration",
                "--check",
                "--baseline",
                str(out),
                "--tolerance",
                "0.5",
            ]
        )
        assert code == 0

    def test_main_check_missing_baseline_errors(self, tmp_path, capsys):
        code = main(["--quick", "--benches", "calibration", "--check",
                     "--baseline", str(tmp_path / "absent.json")])
        assert code == 2

    def test_repro_bench_subcommand_forwards(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["bench", "--quick", "--benches", "calibration"])
        assert code == 0
        assert "calibration" in capsys.readouterr().out
