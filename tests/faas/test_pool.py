"""SandboxPool: acquire/release, keep-alive eviction, provisioning."""

import pytest

from repro.faas.keepalive import FixedKeepAlive
from repro.faas.pool import SandboxPool
from repro.hypervisor.platform import firecracker_platform
from repro.hypervisor.sandbox import Sandbox, SandboxState
from repro.sim.engine import Engine
from repro.sim.units import seconds


def paused_box(virt, vcpus=1):
    sandbox = Sandbox(vcpus=vcpus, memory_mb=128)
    virt.vanilla.place_initial(sandbox, 0)
    virt.vanilla.pause(sandbox, 0)
    return sandbox


@pytest.fixture
def setup():
    engine = Engine()
    virt = firecracker_platform()
    pool = SandboxPool(engine, FixedKeepAlive(seconds(10)))
    return engine, virt, pool


class TestAcquireRelease:
    def test_acquire_empty_pool_misses(self, setup):
        _, _, pool = setup
        assert pool.acquire("fw") is None
        assert pool.misses == 1

    def test_release_then_acquire_hits(self, setup):
        _, virt, pool = setup
        sandbox = paused_box(virt)
        pool.release("fw", sandbox)
        assert pool.acquire("fw") is sandbox
        assert pool.hits == 1

    def test_fifo_order(self, setup):
        _, virt, pool = setup
        first = paused_box(virt)
        second = paused_box(virt)
        pool.release("fw", first)
        pool.release("fw", second)
        assert pool.acquire("fw") is first
        assert pool.acquire("fw") is second

    def test_release_requires_paused(self, setup):
        _, virt, pool = setup
        sandbox = Sandbox(vcpus=1, memory_mb=128)
        virt.vanilla.place_initial(sandbox, 0)  # RUNNING
        with pytest.raises(ValueError):
            pool.release("fw", sandbox)

    def test_per_function_isolation(self, setup):
        _, virt, pool = setup
        pool.release("fw", paused_box(virt))
        assert pool.acquire("other") is None
        assert pool.acquire("fw") is not None

    def test_sizes(self, setup):
        _, virt, pool = setup
        pool.release("fw", paused_box(virt))
        pool.release("fw", paused_box(virt))
        pool.release("nat", paused_box(virt))
        assert pool.size("fw") == 2
        assert pool.total_size() == 3


class TestKeepAliveEviction:
    def test_idle_sandbox_evicted_after_window(self, setup):
        engine, virt, pool = setup
        evicted = []
        pool._on_evict = lambda name, sb: evicted.append(sb)
        sandbox = paused_box(virt)
        pool.release("fw", sandbox)
        engine.run(until=seconds(11))
        assert pool.size("fw") == 0
        assert sandbox.state is SandboxState.STOPPED
        assert evicted == [sandbox]
        assert pool.evictions == 1

    def test_acquire_before_window_cancels_eviction(self, setup):
        engine, virt, pool = setup
        sandbox = paused_box(virt)
        pool.release("fw", sandbox)
        engine.run(until=seconds(5))
        assert pool.acquire("fw") is sandbox
        engine.run(until=seconds(60))
        assert sandbox.state is SandboxState.PAUSED  # untouched

    def test_provisioned_quota_never_evicted(self, setup):
        engine, virt, pool = setup
        pool.mark_provisioned("fw", 1)
        sandbox = paused_box(virt)
        pool.release("fw", sandbox)
        engine.run(until=seconds(120))
        assert pool.size("fw") == 1

    def test_beyond_quota_still_evicted(self, setup):
        engine, virt, pool = setup
        pool.mark_provisioned("fw", 1)
        keeper = paused_box(virt)
        extra = paused_box(virt)
        pool.release("fw", keeper)
        pool.release("fw", extra)
        engine.run(until=seconds(120))
        assert pool.size("fw") == 1
        assert pool.idle_sandboxes("fw") == [keeper]

    def test_negative_quota_rejected(self, setup):
        _, _, pool = setup
        with pytest.raises(ValueError):
            pool.mark_provisioned("fw", -1)

    def test_rerelease_rearms_timer(self, setup):
        engine, virt, pool = setup
        sandbox = paused_box(virt)
        pool.release("fw", sandbox)
        engine.run(until=seconds(5))
        assert pool.acquire("fw") is sandbox
        pool.release("fw", sandbox)
        engine.run(until=seconds(14))  # 9 s after re-release: still alive
        assert pool.size("fw") == 1
        engine.run(until=seconds(16))
        assert pool.size("fw") == 0
