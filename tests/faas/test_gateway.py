"""Gateway behaviors not covered by the platform tests: interference
injection, logic errors, invocation filtering."""

import pytest

from repro.faas import FaaSPlatform, FunctionSpec, StartType
from repro.sim.units import seconds
from repro.workloads import FirewallWorkload, NatWorkload


def make_platform():
    faas = FaaSPlatform.build("firecracker", seed=13)
    faas.register(FunctionSpec("fw", FirewallWorkload()))
    faas.register(FunctionSpec("nat", NatWorkload()))
    return faas


class TestInterferenceInjection:
    def test_extra_delay_extends_execution_window(self):
        faas = make_platform()
        clean = faas.trigger("fw", StartType.COLD)
        delayed = faas.trigger("fw", StartType.COLD, extra_delay_ns=5_000)
        faas.engine.run(until=seconds(3))
        assert delayed.interference_ns == 5_000
        assert clean.interference_ns == 0
        assert delayed.exec_end_ns - delayed.exec_start_ns >= 5_000

    def test_negative_extra_delay_clamped(self):
        faas = make_platform()
        invocation = faas.trigger("fw", StartType.COLD, extra_delay_ns=-100)
        assert invocation.interference_ns == 0


class TestUnknownStartType:
    def test_unconfigured_strategy_rejected(self):
        faas = make_platform()
        del faas.gateway.strategies[StartType.COLD]
        with pytest.raises(ValueError, match="no strategy configured"):
            faas.trigger("fw", StartType.COLD)


class TestCompletedInvocationsFilter:
    def test_filter_by_function(self):
        faas = make_platform()
        faas.trigger("fw", StartType.COLD)
        faas.trigger("nat", StartType.COLD)
        faas.trigger("fw", StartType.COLD)
        faas.engine.run(until=seconds(3))
        assert len(faas.gateway.completed_invocations("fw")) == 2
        assert len(faas.gateway.completed_invocations("nat")) == 1
        assert len(faas.gateway.completed_invocations()) == 3

    def test_timeline_is_precomputed_at_trigger(self):
        """Contract: the gateway plans the whole timeline at trigger
        time (durations are drawn up front), so an invocation's end is
        known — and it counts as completed — before the clock reaches
        it.  Side effects (pause, pool return, hooks) still happen at
        the scheduled completion event."""
        faas = make_platform()
        invocation = faas.trigger("fw", StartType.COLD)
        assert invocation.completed
        assert invocation.exec_end_ns > faas.engine.now
        assert faas.pool.size("fw") == 0  # not returned yet
        faas.engine.run(until=seconds(3))
        assert faas.pool.size("fw") == 1  # side effects ran at the event


class TestInvocationRecordKeeping:
    def test_all_triggers_recorded(self):
        faas = make_platform()
        for _ in range(4):
            faas.trigger("fw", StartType.COLD)
        assert len(faas.gateway.invocations) == 4

    def test_sandbox_id_recorded(self):
        faas = make_platform()
        invocation = faas.trigger("fw", StartType.COLD)
        assert invocation.sandbox_id is not None
