"""FunctionSpec and registry validation."""

import pytest

from repro.faas.function import FunctionRegistry, FunctionSpec
from repro.workloads import FirewallWorkload, ThumbnailWorkload


class TestFunctionSpec:
    def test_defaults(self):
        spec = FunctionSpec("fw", FirewallWorkload())
        assert spec.vcpus == 1
        assert spec.memory_mb == 512
        assert spec.provisioned_concurrency == 0

    def test_ull_follows_workload(self):
        assert FunctionSpec("fw", FirewallWorkload()).is_ull
        assert not FunctionSpec("thumb", ThumbnailWorkload()).is_ull

    def test_zero_vcpus_rejected(self):
        with pytest.raises(ValueError):
            FunctionSpec("fw", FirewallWorkload(), vcpus=0)

    def test_zero_memory_rejected(self):
        with pytest.raises(ValueError):
            FunctionSpec("fw", FirewallWorkload(), memory_mb=0)

    def test_negative_provisioning_rejected(self):
        with pytest.raises(ValueError):
            FunctionSpec("fw", FirewallWorkload(), provisioned_concurrency=-1)


class TestRegistry:
    def test_register_and_get(self):
        registry = FunctionRegistry()
        spec = FunctionSpec("fw", FirewallWorkload())
        registry.register(spec)
        assert registry.get("fw") is spec
        assert "fw" in registry
        assert len(registry) == 1

    def test_duplicate_name_rejected(self):
        registry = FunctionRegistry()
        registry.register(FunctionSpec("fw", FirewallWorkload()))
        with pytest.raises(ValueError):
            registry.register(FunctionSpec("fw", FirewallWorkload()))

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            FunctionRegistry().get("nope")

    def test_names_sorted(self):
        registry = FunctionRegistry()
        registry.register(FunctionSpec("zeta", FirewallWorkload()))
        registry.register(FunctionSpec("alpha", ThumbnailWorkload()))
        assert registry.names() == ["alpha", "zeta"]

    def test_ull_functions_filter(self):
        registry = FunctionRegistry()
        registry.register(FunctionSpec("fw", FirewallWorkload()))
        registry.register(FunctionSpec("thumb", ThumbnailWorkload()))
        assert [f.name for f in registry.ull_functions()] == ["fw"]
