"""Multi-host cluster routing."""

import pytest

from repro.faas import FunctionSpec, StartType
from repro.faas.cluster import (
    FaaSCluster,
    LeastLoadedPlacement,
    NoHealthyHostError,
    RoundRobinPlacement,
    WarmAffinityPlacement,
)
from repro.sim.units import seconds
from repro.workloads import FirewallWorkload


def make_cluster(hosts=3, placement=None):
    cluster = FaaSCluster(hosts=hosts, seed=4, placement=placement)
    cluster.register(FunctionSpec("fw", FirewallWorkload()))
    return cluster


class TestConstruction:
    def test_host_count(self):
        assert len(make_cluster(hosts=4).hosts) == 4

    def test_zero_hosts_rejected(self):
        with pytest.raises(ValueError):
            FaaSCluster(hosts=0)

    def test_register_deploys_everywhere(self):
        cluster = make_cluster()
        assert all("fw" in host.registry for host in cluster.hosts)

    def test_provision_per_host(self):
        cluster = make_cluster()
        cluster.provision_warm("fw", per_host=2)
        assert cluster.total_pooled("fw") == 6


class TestRoundRobin:
    def test_cycles_hosts(self):
        cluster = make_cluster(placement=RoundRobinPlacement())
        cluster.provision_warm("fw", per_host=2)
        for _ in range(6):
            cluster.trigger("fw", StartType.HORSE)
        assert cluster.stats.per_host_triggers == {0: 2, 1: 2, 2: 2}


class TestLeastLoaded:
    def test_prefers_idle_host(self):
        cluster = make_cluster(placement=LeastLoadedPlacement())
        cluster.provision_warm("fw", per_host=3)
        # Three concurrent triggers: each lands on a different host.
        for _ in range(3):
            cluster.trigger("fw", StartType.HORSE)
        assert set(cluster.stats.per_host_triggers) == {0, 1, 2}

    def test_in_flight_drains_on_completion(self):
        cluster = make_cluster(placement=LeastLoadedPlacement())
        cluster.provision_warm("fw", per_host=1)
        cluster.trigger("fw", StartType.HORSE)
        assert sum(cluster.in_flight.values()) == 1
        cluster.engine.run(until=seconds(1))
        assert sum(cluster.in_flight.values()) == 0


class TestWarmAffinity:
    def test_routes_to_host_with_warm_sandbox(self):
        cluster = make_cluster(placement=WarmAffinityPlacement())
        # Only host 2 has a warm pool.
        cluster.hosts[2].provision_warm("fw", count=1)
        cluster.trigger("fw", StartType.HORSE)
        assert cluster.stats.per_host_triggers == {2: 1}
        assert cluster.stats.cold_fallbacks == 0

    def test_cold_fallback_when_nowhere_warm(self):
        cluster = make_cluster(placement=WarmAffinityPlacement())
        invocation = cluster.trigger("fw", StartType.HORSE)
        cluster.engine.run(until=seconds(3))
        assert cluster.stats.cold_fallbacks == 1
        assert invocation.start_type is StartType.COLD

    def test_avoids_cold_starts_vs_round_robin(self):
        """The point of warm affinity: same traffic, fewer colds."""
        def run(placement):
            cluster = make_cluster(placement=placement)
            cluster.hosts[0].provision_warm("fw", count=4)
            for _ in range(4):
                cluster.trigger("fw", StartType.HORSE)
                cluster.engine.run(until=cluster.engine.now + seconds(1))
            return cluster.stats.cold_fallbacks

        assert run(WarmAffinityPlacement()) < run(RoundRobinPlacement())


class TestRoutabilityUnderFailure:
    """Placement must only ever see healthy, breaker-admitted hosts."""

    def test_least_loaded_skips_crashed_host(self):
        cluster = make_cluster(placement=LeastLoadedPlacement())
        cluster.provision_warm("fw", per_host=2)
        cluster.crash_host(0)
        for _ in range(4):
            cluster.trigger("fw", StartType.HORSE)
        assert 0 not in cluster.stats.per_host_triggers

    def test_warm_affinity_skips_crashed_host(self):
        cluster = make_cluster(placement=WarmAffinityPlacement())
        # Host 0 is the only warm host — then it dies.
        cluster.hosts[0].provision_warm("fw", count=4)
        cluster.hosts[1].provision_warm("fw", count=1)
        cluster.crash_host(0)
        cluster.trigger("fw", StartType.HORSE)
        assert cluster.stats.per_host_triggers == {1: 1}

    def test_round_robin_skips_crashed_host(self):
        cluster = make_cluster(placement=RoundRobinPlacement())
        cluster.provision_warm("fw", per_host=2)
        cluster.crash_host(1)
        for _ in range(4):
            cluster.trigger("fw", StartType.HORSE)
        assert 1 not in cluster.stats.per_host_triggers

    def test_host_gate_vetoes_routing(self):
        # The resilience layer points host_gate at per-node circuit
        # breakers; an open breaker must steer placement away.
        cluster = make_cluster(placement=LeastLoadedPlacement())
        cluster.provision_warm("fw", per_host=2)
        cluster.host_gate = lambda index: index != 0
        for _ in range(4):
            cluster.trigger("fw", StartType.HORSE)
        assert 0 not in cluster.stats.per_host_triggers

    def test_no_routable_host_raises(self):
        cluster = make_cluster(hosts=2)
        cluster.crash_host(0)
        cluster.host_gate = lambda index: index != 1  # gate the survivor
        with pytest.raises(NoHealthyHostError):
            cluster.trigger("fw", StartType.HORSE)

    def test_trigger_on_downed_host_rejected(self):
        cluster = make_cluster()
        cluster.provision_warm("fw", per_host=1)
        cluster.crash_host(2)
        with pytest.raises(NoHealthyHostError):
            cluster.trigger_on(2, "fw", StartType.HORSE)

    def test_crash_destroys_pool_and_counts(self):
        cluster = make_cluster()
        cluster.provision_warm("fw", per_host=2)
        lost = cluster.crash_host(1)
        assert lost == 2
        assert cluster.hosts[1].pool.size("fw") == 0
        assert cluster.stats.crashes == 1
        assert not cluster.health[1].up

    def test_warm_affinity_returns_after_recovery(self):
        """Affinity redistributes back once a host recovers and re-warms."""
        cluster = make_cluster(placement=WarmAffinityPlacement())
        cluster.hosts[0].provision_warm("fw", count=8)
        cluster.hosts[1].provision_warm("fw", count=1)
        cluster.crash_host(0)
        cluster.trigger("fw", StartType.HORSE)       # host 1: only warm one
        cluster.recover_host(0)
        cluster.hosts[0].provision_warm("fw", count=8)
        cluster.engine.run(until=seconds(1))         # drain in-flight
        for _ in range(3):
            cluster.trigger("fw", StartType.HORSE)
            cluster.engine.run(until=cluster.engine.now + seconds(1))
        # Recovered, deeply-warm host 0 serves the follow-up traffic.
        assert cluster.stats.per_host_triggers[0] >= 3
        assert cluster.health[0].up and cluster.health[0].recoveries == 1

    def test_excluding_is_scoped(self):
        cluster = make_cluster(hosts=2, placement=LeastLoadedPlacement())
        cluster.provision_warm("fw", per_host=2)
        with cluster.excluding(0):
            assert cluster.routable_hosts() == [1]
        assert cluster.routable_hosts() == [0, 1]


class TestEndToEnd:
    def test_mixed_traffic_completes_everywhere(self):
        cluster = make_cluster(hosts=2)
        cluster.provision_warm("fw", per_host=2)
        invocations = [
            cluster.trigger("fw", StartType.HORSE, run_logic=True)
            for _ in range(8)
        ]
        cluster.engine.run(until=seconds(2))
        assert all(inv.completed and inv.error is None for inv in invocations)

    def test_single_shared_clock(self):
        cluster = make_cluster(hosts=2)
        assert all(host.engine is cluster.engine for host in cluster.hosts)
