"""Invocation timeline arithmetic."""

import pytest

from repro.faas.invocation import Invocation, StartType


def completed_invocation(trigger=1000, ready=2000, end=12_000):
    inv = Invocation(function_name="fw", trigger_ns=trigger)
    inv.start_type = StartType.WARM
    inv.sandbox_ready_ns = ready
    inv.exec_start_ns = ready
    inv.exec_end_ns = end
    return inv


class TestTimeline:
    def test_initialization_ns(self):
        assert completed_invocation().initialization_ns == 1000

    def test_execution_ns(self):
        assert completed_invocation().execution_ns == 10_000

    def test_total_ns(self):
        assert completed_invocation().total_ns == 11_000

    def test_init_percentage(self):
        inv = completed_invocation(trigger=0, ready=50, end=100)
        assert inv.init_percentage == pytest.approx(50.0)

    def test_init_percentage_tiny_init(self):
        inv = completed_invocation(trigger=0, ready=1, end=10_000)
        assert inv.init_percentage == pytest.approx(0.01)

    def test_completed_flag(self):
        inv = Invocation(function_name="fw", trigger_ns=0)
        assert not inv.completed
        assert completed_invocation().completed

    def test_incomplete_total_raises(self):
        inv = Invocation(function_name="fw", trigger_ns=0)
        with pytest.raises(ValueError):
            _ = inv.total_ns

    def test_no_ready_time_raises(self):
        inv = Invocation(function_name="fw", trigger_ns=0)
        with pytest.raises(ValueError):
            _ = inv.initialization_ns

    def test_unique_ids(self):
        a = Invocation(function_name="fw", trigger_ns=0)
        b = Invocation(function_name="fw", trigger_ns=0)
        assert a.invocation_id != b.invocation_id

    def test_start_types(self):
        assert {t.value for t in StartType} == {"cold", "restore", "warm", "horse"}
