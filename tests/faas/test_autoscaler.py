"""Pool autoscaler: rate tracking and reconciliation."""

import pytest

from repro.faas import FaaSPlatform, FunctionSpec, StartType
from repro.faas.autoscaler import AutoscalerConfig, PoolAutoscaler
from repro.sim.units import microseconds, seconds
from repro.workloads import FirewallWorkload


def make_platform():
    faas = FaaSPlatform.build("firecracker", seed=3)
    faas.register(FunctionSpec("fw", FirewallWorkload()))
    return faas


def make_autoscaler(faas, **overrides):
    defaults = dict(
        window_ns=seconds(10), period_ns=seconds(2), headroom=1.5,
        min_pool=1, max_pool=8,
    )
    defaults.update(overrides)
    return PoolAutoscaler(
        faas,
        "fw",
        expected_busy_ns=seconds(1),  # exaggerated busy time for testing
        config=AutoscalerConfig(**defaults),
    )


class TestConfig:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_pool=5, max_pool=2)

    def test_bad_headroom_rejected(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(headroom=0.5)

    def test_bad_busy_time_rejected(self):
        faas = make_platform()
        with pytest.raises(ValueError):
            PoolAutoscaler(faas, "fw", expected_busy_ns=0)


class TestRateTracking:
    def test_rate_counts_window_arrivals(self):
        faas = make_platform()
        scaler = make_autoscaler(faas)
        for _ in range(20):
            scaler.observe_trigger()
        assert scaler.observed_rate_per_second() == pytest.approx(2.0)

    def test_old_arrivals_expire(self):
        faas = make_platform()
        scaler = make_autoscaler(faas)
        scaler.observe_trigger()
        faas.engine.run(until=seconds(20))
        assert scaler.observed_rate_per_second() == 0.0

    def test_desired_size_follows_littles_law(self):
        faas = make_platform()
        scaler = make_autoscaler(faas)
        # 2/s observed, 1 s busy, 1.5 headroom -> ceil(3.0) = 3
        for _ in range(20):
            scaler.observe_trigger()
        assert scaler.desired_pool_size() == 3

    def test_desired_size_clamped(self):
        faas = make_platform()
        scaler = make_autoscaler(faas, max_pool=2)
        for _ in range(100):
            scaler.observe_trigger()
        assert scaler.desired_pool_size() == 2

    def test_idle_floor(self):
        faas = make_platform()
        scaler = make_autoscaler(faas, min_pool=1)
        assert scaler.desired_pool_size() == 1


class TestReconciliation:
    def test_scale_up_provisions_sandboxes(self):
        faas = make_platform()
        scaler = make_autoscaler(faas)
        scaler.start()
        for _ in range(20):
            scaler.observe_trigger()
        faas.engine.run(until=seconds(3))  # one reconciliation
        assert faas.pool.size("fw") == 3
        assert scaler.scale_ups >= 1

    def test_scale_down_lowers_quota(self):
        faas = make_platform()
        scaler = make_autoscaler(faas, min_pool=1)
        scaler.start()
        for _ in range(20):
            scaler.observe_trigger()
        faas.engine.run(until=seconds(3))
        assert faas.pool.provisioned_count("fw") == 3
        # traffic stops; the quota shrinks on a later reconciliation
        faas.engine.run(until=seconds(15))
        assert faas.pool.provisioned_count("fw") == 1

    def test_stop_halts_reconciliation(self):
        faas = make_platform()
        scaler = make_autoscaler(faas)
        scaler.start()
        faas.engine.run(until=seconds(3))
        count = scaler.reconciliations
        scaler.stop()
        faas.engine.run(until=seconds(30))
        assert scaler.reconciliations == count

    def test_scaled_pool_serves_horse_triggers(self):
        faas = make_platform()
        scaler = make_autoscaler(faas)
        scaler.start()
        for _ in range(20):
            scaler.observe_trigger()
        faas.engine.run(until=seconds(3))
        invocation = faas.trigger("fw", StartType.HORSE)
        faas.engine.run(until=faas.engine.now + seconds(1))
        assert invocation.completed
        assert invocation.initialization_ns < microseconds(1)
