"""Pool autoscaler: rate tracking and reconciliation."""

import pytest

from repro.faas import FaaSPlatform, FunctionSpec, StartType
from repro.faas.autoscaler import AutoscalerConfig, PoolAutoscaler
from repro.sim.units import microseconds, seconds
from repro.workloads import FirewallWorkload


def make_platform():
    faas = FaaSPlatform.build("firecracker", seed=3)
    faas.register(FunctionSpec("fw", FirewallWorkload()))
    return faas


def make_autoscaler(faas, **overrides):
    defaults = dict(
        window_ns=seconds(10), period_ns=seconds(2), headroom=1.5,
        min_pool=1, max_pool=8,
    )
    defaults.update(overrides)
    return PoolAutoscaler(
        faas,
        "fw",
        expected_busy_ns=seconds(1),  # exaggerated busy time for testing
        config=AutoscalerConfig(**defaults),
    )


class TestConfig:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_pool=5, max_pool=2)

    def test_bad_headroom_rejected(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(headroom=0.5)

    def test_bad_busy_time_rejected(self):
        faas = make_platform()
        with pytest.raises(ValueError):
            PoolAutoscaler(faas, "fw", expected_busy_ns=0)


class TestRateTracking:
    def test_rate_counts_window_arrivals(self):
        faas = make_platform()
        scaler = make_autoscaler(faas)
        for _ in range(20):
            scaler.observe_trigger()
        assert scaler.observed_rate_per_second() == pytest.approx(2.0)

    def test_old_arrivals_expire(self):
        faas = make_platform()
        scaler = make_autoscaler(faas)
        scaler.observe_trigger()
        faas.engine.run(until=seconds(20))
        assert scaler.observed_rate_per_second() == 0.0

    def test_desired_size_follows_littles_law(self):
        faas = make_platform()
        scaler = make_autoscaler(faas)
        # 2/s observed, 1 s busy, 1.5 headroom -> ceil(3.0) = 3
        for _ in range(20):
            scaler.observe_trigger()
        assert scaler.desired_pool_size() == 3

    def test_desired_size_clamped(self):
        faas = make_platform()
        scaler = make_autoscaler(faas, max_pool=2)
        for _ in range(100):
            scaler.observe_trigger()
        assert scaler.desired_pool_size() == 2

    def test_idle_floor(self):
        faas = make_platform()
        scaler = make_autoscaler(faas, min_pool=1)
        assert scaler.desired_pool_size() == 1


class TestReconciliation:
    def test_scale_up_provisions_sandboxes(self):
        faas = make_platform()
        scaler = make_autoscaler(faas)
        scaler.start()
        for _ in range(20):
            scaler.observe_trigger()
        faas.engine.run(until=seconds(3))  # one reconciliation
        assert faas.pool.size("fw") == 3
        assert scaler.scale_ups >= 1

    def test_scale_down_lowers_quota(self):
        faas = make_platform()
        scaler = make_autoscaler(faas, min_pool=1)
        scaler.start()
        for _ in range(20):
            scaler.observe_trigger()
        faas.engine.run(until=seconds(3))
        assert faas.pool.provisioned_count("fw") == 3
        # traffic stops; the quota shrinks on a later reconciliation
        faas.engine.run(until=seconds(15))
        assert faas.pool.provisioned_count("fw") == 1

    def test_stop_halts_reconciliation(self):
        faas = make_platform()
        scaler = make_autoscaler(faas)
        scaler.start()
        faas.engine.run(until=seconds(3))
        count = scaler.reconciliations
        scaler.stop()
        faas.engine.run(until=seconds(30))
        assert scaler.reconciliations == count

    def test_scaled_pool_serves_horse_triggers(self):
        faas = make_platform()
        scaler = make_autoscaler(faas)
        scaler.start()
        for _ in range(20):
            scaler.observe_trigger()
        faas.engine.run(until=seconds(3))
        invocation = faas.trigger("fw", StartType.HORSE)
        faas.engine.run(until=faas.engine.now + seconds(1))
        assert invocation.completed
        assert invocation.initialization_ns < microseconds(1)


class TestTrackerCore:
    """PoolTargetTracker is the engine-free core shared with the
    prewarm budget protection; pin it on its own."""

    def test_validation(self):
        from repro.faas.autoscaler import PoolTargetTracker

        with pytest.raises(ValueError, match="window"):
            PoolTargetTracker(window_ns=0, expected_busy_ns=1)
        with pytest.raises(ValueError, match="busy"):
            PoolTargetTracker(window_ns=1, expected_busy_ns=0)
        with pytest.raises(ValueError, match="headroom"):
            PoolTargetTracker(window_ns=1, expected_busy_ns=1, headroom=0.9)
        with pytest.raises(ValueError, match="bounds"):
            PoolTargetTracker(
                window_ns=1, expected_busy_ns=1, min_pool=5, max_pool=2
            )

    def test_empty_window_rate_zero_target_floor(self):
        from repro.faas.autoscaler import PoolTargetTracker

        tracker = PoolTargetTracker(
            window_ns=seconds(10), expected_busy_ns=seconds(1), min_pool=2
        )
        assert tracker.rate_per_second(seconds(100)) == 0.0
        assert tracker.target(seconds(100)) == 2

    def test_arrivals_expire_without_new_observations(self):
        from repro.faas.autoscaler import PoolTargetTracker

        tracker = PoolTargetTracker(
            window_ns=seconds(10), expected_busy_ns=seconds(1), min_pool=0
        )
        for _ in range(30):
            tracker.observe(seconds(1))
        assert tracker.target(seconds(2)) > 0
        # Reading far in the future must expire the whole window even
        # though observe() was never called again.
        assert tracker.rate_per_second(seconds(60)) == 0.0
        assert tracker.target(seconds(60)) == 0

    def test_target_clamps_both_ends(self):
        from repro.faas.autoscaler import PoolTargetTracker

        tracker = PoolTargetTracker(
            window_ns=seconds(10), expected_busy_ns=seconds(1),
            min_pool=1, max_pool=4,
        )
        assert tracker.target(0) == 1  # floor with no traffic
        for _ in range(1000):
            tracker.observe(seconds(5))
        assert tracker.target(seconds(5)) == 4  # ceiling under flood


class TestEdgeCases:
    def test_empty_rate_window_reconciles_to_floor(self):
        """A reconciliation with zero observed traffic must not divide
        by anything or go below min_pool."""
        faas = make_platform()
        scaler = make_autoscaler(faas, min_pool=1)
        scaler.start()
        faas.engine.run(until=seconds(5))  # ticks with an empty window
        assert scaler.reconciliations >= 2
        assert scaler.current_target == 1
        assert faas.pool.provisioned_count("fw") == 1

    def test_scale_down_races_in_flight_invocations(self):
        """Quota shrinks while sandboxes are busy: the in-flight work
        must complete untouched and the pool settle at the new target
        afterwards — scale-down is quota-only, never teardown."""
        faas = make_platform()
        scaler = make_autoscaler(faas, min_pool=1)
        scaler.start()
        for _ in range(20):
            scaler.observe_trigger()
        faas.engine.run(until=seconds(3))
        assert faas.pool.size("fw") == 3
        # Occupy the pool, then let traffic stop so the next
        # reconciliations race the busy sandboxes with a lower target.
        invocations = [
            faas.trigger("fw", StartType.HORSE) for _ in range(3)
        ]
        faas.engine.run(until=seconds(20))
        assert all(invocation.completed for invocation in invocations)
        assert scaler.current_target == 1
        assert faas.pool.provisioned_count("fw") == 1
        assert faas.pool.size("fw") <= 3

    def test_reconciliation_across_gateway_recovery(self):
        """The autoscaler lives on the data plane: a control-plane
        crash/recovery (gateway epoch bump) must neither stop its ticks
        nor reset its rate window."""
        from repro.faas.autoscaler import AutoscalerConfig, PoolAutoscaler
        from repro.sim.engine import Engine

        from tests.controlplane.conftest import build_shard

        engine = Engine()
        shard = build_shard(engine, 0)
        host = shard.cluster.hosts[0]
        scaler = PoolAutoscaler(
            host,
            "firewall",
            expected_busy_ns=seconds(1),
            config=AutoscalerConfig(
                window_ns=seconds(10), period_ns=seconds(2),
                min_pool=1, max_pool=8,
            ),
        )
        scaler.start()
        for _ in range(20):
            scaler.observe_trigger()
        engine.schedule_at(seconds(3), lambda: shard.crash(engine.now))
        engine.schedule_at(seconds(4), lambda: shard.recover(engine.now))
        engine.run(until=seconds(5))
        assert shard.epoch == 1
        ticks_at_recovery = scaler.reconciliations
        assert ticks_at_recovery >= 1
        assert scaler.current_target == 3  # window survived the epoch bump
        engine.run(until=seconds(9))
        assert scaler.reconciliations > ticks_at_recovery
        # Post-recovery traffic routed through the NEW incarnation still
        # lands on the same data plane the autoscaler provisioned.
        shard.submit("firewall", origin=123)
        scaler.stop()  # or the tick would reschedule forever below
        engine.run()
        assert shard.log.outcome_of(123).state == "completed"
