"""FaaSPlatform end-to-end: registration, provisioning, triggering."""

import pytest

from repro.faas.function import FunctionSpec
from repro.faas.invocation import StartType
from repro.faas.platform import FaaSPlatform
from repro.faas.startup import PoolMissError
from repro.hypervisor.sandbox import SandboxState
from repro.sim.units import seconds
from repro.workloads import ArrayFilterWorkload, FirewallWorkload, NatWorkload


def platform_with(spec):
    faas = FaaSPlatform.build("firecracker", seed=7)
    faas.register(spec)
    return faas


class TestRegistration:
    def test_register_and_trigger_cold(self):
        faas = platform_with(FunctionSpec("fw", FirewallWorkload()))
        invocation = faas.trigger("fw", StartType.COLD)
        faas.engine.run()
        assert invocation.completed
        assert invocation.start_type is StartType.COLD

    def test_unknown_function_rejected(self):
        faas = FaaSPlatform.build()
        with pytest.raises(KeyError):
            faas.trigger("ghost", StartType.COLD)

    def test_provisioned_concurrency_marks_pool(self):
        faas = FaaSPlatform.build()
        faas.register(
            FunctionSpec("fw", FirewallWorkload(), provisioned_concurrency=2)
        )
        assert faas.pool.provisioned_count("fw") == 2


class TestProvisioning:
    def test_provision_fills_pool(self):
        faas = platform_with(FunctionSpec("fw", FirewallWorkload()))
        faas.provision_warm("fw", count=3)
        assert faas.pool.size("fw") == 3

    def test_provisioned_sandboxes_are_paused(self):
        faas = platform_with(FunctionSpec("fw", FirewallWorkload()))
        faas.provision_warm("fw", count=1)
        sandbox = faas.pool.idle_sandboxes("fw")[0]
        assert sandbox.state is SandboxState.PAUSED

    def test_ull_provisioning_builds_horse_artifacts(self):
        faas = platform_with(FunctionSpec("fw", FirewallWorkload()))
        faas.provision_warm("fw", count=1)  # firewall is uLL
        sandbox = faas.pool.idle_sandboxes("fw")[0]
        assert sandbox.p2sm_state is not None
        assert sandbox.coalesced_update is not None

    def test_non_ull_provisioning_uses_vanilla_pause(self):
        from repro.workloads import ThumbnailWorkload

        faas = platform_with(FunctionSpec("thumb", ThumbnailWorkload()))
        faas.provision_warm("thumb", count=1)
        sandbox = faas.pool.idle_sandboxes("thumb")[0]
        assert sandbox.p2sm_state is None

    def test_provision_zero_rejected(self):
        faas = platform_with(FunctionSpec("fw", FirewallWorkload()))
        with pytest.raises(ValueError):
            faas.provision_warm("fw", count=0)

    def test_provision_allocates_host_memory(self):
        faas = platform_with(FunctionSpec("fw", FirewallWorkload(), memory_mb=256))
        before = faas.virt.host.memory_used_mb
        faas.provision_warm("fw", count=2)
        assert faas.virt.host.memory_used_mb == before + 512


class TestTriggerLifecycle:
    def test_horse_trigger_end_to_end(self):
        faas = platform_with(FunctionSpec("fw", FirewallWorkload()))
        faas.provision_warm("fw", count=1)
        invocation = faas.trigger("fw", StartType.HORSE, run_logic=True)
        faas.engine.run()
        assert invocation.completed
        assert invocation.error is None
        assert invocation.result is not None
        assert invocation.initialization_ns < 200

    def test_warm_trigger_without_provisioning_misses(self):
        faas = platform_with(FunctionSpec("fw", FirewallWorkload()))
        with pytest.raises(PoolMissError):
            faas.trigger("fw", StartType.WARM)

    def test_sandbox_returns_to_pool_after_completion(self):
        faas = platform_with(FunctionSpec("fw", FirewallWorkload()))
        faas.provision_warm("fw", count=1)
        faas.trigger("fw", StartType.HORSE)
        assert faas.pool.size("fw") == 0  # in use
        # Bounded run: an unbounded one would also drain the keep-alive
        # eviction scheduled 600 s out.
        faas.engine.run(until=seconds(1))
        assert faas.pool.size("fw") == 1  # re-paused and pooled

    def test_repeated_horse_triggers_reuse_pool(self):
        faas = platform_with(FunctionSpec("fw", FirewallWorkload()))
        faas.provision_warm("fw", count=1)
        for index in range(5):
            invocation = faas.trigger("fw", StartType.HORSE)
            faas.engine.run(until=faas.engine.now + seconds(1))
            assert invocation.completed, f"trigger {index} incomplete"
        assert faas.pool.hits == 5

    def test_run_logic_all_three_ull_workloads(self):
        for workload in (FirewallWorkload(), NatWorkload(), ArrayFilterWorkload()):
            faas = platform_with(FunctionSpec(workload.name, workload))
            invocation = faas.trigger(workload.name, StartType.COLD, run_logic=True)
            faas.engine.run()
            assert invocation.error is None, invocation.error

    def test_completion_hook_fires(self):
        faas = platform_with(FunctionSpec("fw", FirewallWorkload()))
        done = []
        faas.gateway.completion_hooks.append(done.append)
        faas.trigger("fw", StartType.COLD)
        faas.engine.run()
        assert len(done) == 1

    def test_keepalive_eviction_releases_memory(self):
        faas = FaaSPlatform.build("firecracker", seed=1)
        faas.register(FunctionSpec("fw", FirewallWorkload(), memory_mb=256))
        faas.provision_warm("fw", count=1)
        used = faas.virt.host.memory_used_mb
        faas.engine.run(until=seconds(700))  # beyond default keep-alive
        assert faas.pool.size("fw") == 0
        assert faas.virt.host.memory_used_mb == used - 256
