"""Start strategies: cold / restore / warm / horse timing and behavior."""

import pytest

from repro.core.hot_resume import HorsePauseResume
from repro.faas.function import FunctionSpec
from repro.faas.invocation import StartType
from repro.faas.keepalive import FixedKeepAlive
from repro.faas.pool import SandboxPool
from repro.faas.startup import (
    ColdStart,
    HorseStart,
    PoolMissError,
    RestoreStart,
    WarmStart,
)
from repro.hypervisor.platform import firecracker_platform
from repro.hypervisor.sandbox import Sandbox, SandboxState
from repro.sim.engine import Engine
from repro.sim.units import microseconds, seconds
from repro.workloads import FirewallWorkload


@pytest.fixture
def virt():
    return firecracker_platform()


@pytest.fixture
def spec():
    return FunctionSpec("fw", FirewallWorkload(), vcpus=1, memory_mb=512)


def make_pool(virt):
    return SandboxPool(Engine(), FixedKeepAlive())


class TestColdStart:
    def test_produces_running_sandbox(self, virt, spec):
        outcome = ColdStart(virt).obtain(spec, 0)
        assert outcome.sandbox.state is SandboxState.RUNNING
        assert outcome.start_type is StartType.COLD

    def test_init_is_about_1_5s(self, virt, spec):
        outcome = ColdStart(virt).obtain(spec, 0)
        assert outcome.init_ns == pytest.approx(seconds(1.5), rel=0.05)

    def test_allocates_memory(self, virt, spec):
        before = virt.host.memory_used_mb
        ColdStart(virt).obtain(spec, 0)
        assert virt.host.memory_used_mb == before + 512


class TestRestoreStart:
    def test_first_obtain_creates_snapshot(self, virt, spec):
        strategy = RestoreStart(virt)
        outcome = strategy.obtain(spec, 0)
        assert outcome.start_type is StartType.RESTORE
        assert f"faasnap:{spec.name}" in virt.snapshots

    def test_init_is_about_1300us(self, virt, spec):
        outcome = RestoreStart(virt).obtain(spec, 0)
        assert outcome.init_ns == pytest.approx(microseconds(1300), rel=0.05)

    def test_snapshot_reused_across_obtains(self, virt, spec):
        strategy = RestoreStart(virt)
        strategy.obtain(spec, 0)
        strategy.obtain(spec, 0)
        assert virt.snapshots.restores == 2
        assert len(virt.snapshots.names()) == 1

    def test_restored_sandbox_running(self, virt, spec):
        outcome = RestoreStart(virt).obtain(spec, 0)
        assert outcome.sandbox.state is SandboxState.RUNNING


class TestWarmStart:
    def test_miss_raises(self, virt, spec):
        pool = make_pool(virt)
        with pytest.raises(PoolMissError):
            WarmStart(virt, pool).obtain(spec, 0)

    def test_hit_resumes_pooled_sandbox(self, virt, spec):
        pool = make_pool(virt)
        sandbox = Sandbox(vcpus=1, memory_mb=512)
        virt.vanilla.place_initial(sandbox, 0)
        virt.vanilla.pause(sandbox, 0)
        pool.release("fw", sandbox)
        outcome = WarmStart(virt, pool).obtain(spec, 0)
        assert outcome.sandbox is sandbox
        assert outcome.sandbox.state is SandboxState.RUNNING
        assert outcome.init_ns == pytest.approx(1100, rel=0.05)


class TestHorseStart:
    def test_hit_uses_fast_path(self, virt, spec):
        pool = make_pool(virt)
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        sandbox = Sandbox(vcpus=1, memory_mb=512, is_ull=True)
        virt.vanilla.place_initial(sandbox, 0)
        horse.pause(sandbox, 0)
        pool.release("fw", sandbox)
        outcome = HorseStart(virt, pool, horse).obtain(spec, 0)
        assert outcome.start_type is StartType.HORSE
        assert outcome.init_ns < 200

    def test_miss_raises(self, virt, spec):
        pool = make_pool(virt)
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        with pytest.raises(PoolMissError):
            HorseStart(virt, pool, horse).obtain(spec, 0)

    def test_ordering_cold_gt_restore_gt_warm_gt_horse(self, virt, spec):
        """The evaluation's central ordering of start latencies."""
        pool = make_pool(virt)
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        for use_horse in (False, True):
            sandbox = Sandbox(vcpus=1, memory_mb=512, is_ull=use_horse)
            virt.vanilla.place_initial(sandbox, 0)
            if use_horse:
                horse.pause(sandbox, 0)
            else:
                virt.vanilla.pause(sandbox, 0)
            pool.release("fw", sandbox)
        cold = ColdStart(virt).obtain(spec, 0).init_ns
        restore = RestoreStart(virt).obtain(spec, 0).init_ns
        warm = WarmStart(virt, pool).obtain(spec, 0).init_ns
        fast = HorseStart(virt, pool, horse).obtain(spec, 0).init_ns
        assert cold > restore > warm > fast
