"""Keep-alive policies (legacy; superseded by repro.faas.prewarm)."""

import pytest

from repro.faas.keepalive import (
    FixedKeepAlive,
    HistogramKeepAlive,
    HybridKeepAlive,
)
from repro.faas.prewarm import HybridHistogram
from repro.sim.units import seconds

# HistogramKeepAlive is deprecated in favour of prewarm.HybridHistogram;
# these tests cover the legacy behaviour on purpose.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def test_histogram_keepalive_is_deprecated():
    with pytest.warns(DeprecationWarning, match="HybridHistogram"):
        HistogramKeepAlive()


class TestFixed:
    def test_constant_window(self):
        policy = FixedKeepAlive(window_ns=seconds(300))
        assert policy.keep_alive_ns("a") == seconds(300)
        assert policy.keep_alive_ns("b") == seconds(300)

    def test_default_is_10_minutes(self):
        assert FixedKeepAlive().keep_alive_ns("x") == seconds(600)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            FixedKeepAlive(window_ns=-1)

    def test_observe_is_noop(self):
        policy = FixedKeepAlive(seconds(10))
        policy.observe_idle_gap("f", seconds(99999))
        assert policy.keep_alive_ns("f") == seconds(10)


class TestHybridKeepAlive:
    """The migration target: KeepAlivePolicy facade over HybridHistogram."""

    def test_no_deprecation_warning(self, recwarn):
        HybridKeepAlive()
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_falls_back_before_enough_observations(self):
        policy = HybridKeepAlive(
            HybridHistogram(min_observations=4, default_keep_ns=seconds(30))
        )
        policy.observe_idle_gap("f", seconds(1))
        assert policy.keep_alive_ns("f") == seconds(30)

    def test_adapts_to_observed_gaps(self):
        policy = HybridKeepAlive(
            HybridHistogram(
                bin_width_ns=seconds(5),
                min_observations=4,
                default_keep_ns=seconds(600),
            )
        )
        for _ in range(8):
            policy.observe_idle_gap("f", seconds(7))
        # Gaps in bin 1 -> adaptive window, no longer the fallback.
        assert policy.keep_alive_ns("f") < seconds(600)

    def test_prewarm_window_folds_into_keep_alive(self):
        hist = HybridHistogram(
            bin_width_ns=seconds(5), min_observations=4
        )
        policy = HybridKeepAlive(hist)
        for _ in range(8):
            policy.observe_idle_gap("f", seconds(42))
        decision = hist.decision(0)
        assert decision.prewarm_ns is not None
        assert policy.keep_alive_ns("f") == (
            decision.prewarm_ns + decision.keep_alive_ns
        )

    def test_per_function_isolation(self):
        policy = HybridKeepAlive(
            HybridHistogram(bin_width_ns=seconds(5), min_observations=2)
        )
        for _ in range(4):
            policy.observe_idle_gap("short", seconds(2))
            policy.observe_idle_gap("long", seconds(200))
        assert policy.keep_alive_ns("short") < policy.keep_alive_ns("long")

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            HybridKeepAlive().observe_idle_gap("f", -1)


class TestHistogram:
    def test_falls_back_before_enough_observations(self):
        policy = HistogramKeepAlive(
            default_window_ns=seconds(600), min_observations=5
        )
        policy.observe_idle_gap("f", seconds(1))
        assert policy.keep_alive_ns("f") == seconds(600)

    def test_adapts_to_observed_gaps(self):
        policy = HistogramKeepAlive(min_observations=4, margin=1.0)
        for gap_s in (10, 10, 10, 10):
            policy.observe_idle_gap("f", seconds(gap_s))
        assert policy.keep_alive_ns("f") == seconds(10)

    def test_window_uses_p99_of_gaps(self):
        policy = HistogramKeepAlive(min_observations=4, margin=1.0)
        gaps = [seconds(1)] * 99 + [seconds(100)]
        for gap in gaps:
            policy.observe_idle_gap("f", gap)
        window = policy.keep_alive_ns("f")
        assert window > seconds(1)

    def test_margin_scales_window(self):
        tight = HistogramKeepAlive(min_observations=1, margin=1.0)
        loose = HistogramKeepAlive(min_observations=1, margin=2.0)
        for policy in (tight, loose):
            policy.observe_idle_gap("f", seconds(10))
        assert loose.keep_alive_ns("f") == 2 * tight.keep_alive_ns("f")

    def test_max_window_caps(self):
        policy = HistogramKeepAlive(
            min_observations=1, margin=1.0, max_window_ns=seconds(60)
        )
        policy.observe_idle_gap("f", seconds(10_000))
        assert policy.keep_alive_ns("f") == seconds(60)

    def test_per_function_isolation(self):
        policy = HistogramKeepAlive(min_observations=1, margin=1.0)
        policy.observe_idle_gap("short", seconds(1))
        policy.observe_idle_gap("long", seconds(100))
        assert policy.keep_alive_ns("short") < policy.keep_alive_ns("long")

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            HistogramKeepAlive().observe_idle_gap("f", -1)

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            HistogramKeepAlive(min_observations=0)
        with pytest.raises(ValueError):
            HistogramKeepAlive(margin=0.5)
