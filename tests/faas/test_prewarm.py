"""Prewarm policies + capacity model: hand-computed fixtures, pressure.

Policy math (hybrid-histogram windows) is checked against by-hand
numbers, not against the implementation's own formulas; the capacity
model's core safety property — a sandbox with an invocation in flight
is never evicted — is driven both directly and end-to-end (any breach
lands in ``CellStats.violations``).
"""

import pytest

from repro.faas.prewarm import (
    FixedWindow,
    HybridHistogram,
    IdleHistogram,
    NoKeepAlive,
    PolicyDecision,
    PrewarmConfig,
    counter_percentile_ns,
    make_policy,
    render_replay,
    run_cell,
    run_replay,
)
from repro.faas.prewarm import _Cell, _FnState
from repro.sim.units import SECOND
from repro.traces.replay import ReplayConfig

MINUTE = 60 * SECOND


class TestIdleHistogram:
    def test_observe_bins_by_width(self):
        hist = IdleHistogram(bin_width_ns=MINUTE, bins=4)
        hist.observe(0)
        hist.observe(MINUTE - 1)
        hist.observe(90 * SECOND)         # 1.5 min -> bin 1
        assert hist.counts[:2] == [2, 1]
        assert hist.total == 3
        assert hist.oob == 0

    def test_out_of_bounds_bucket(self):
        hist = IdleHistogram(bin_width_ns=MINUTE, bins=4)
        hist.observe(4 * MINUTE)          # range is [0, 4 min)
        assert hist.oob == 1
        assert hist.oob_fraction() == 1.0

    def test_percentile_nearest_rank(self):
        hist = IdleHistogram(bin_width_ns=MINUTE, bins=10)
        for _ in range(9):
            hist.observe(30 * SECOND)     # bin 0
        hist.observe(5 * MINUTE)          # bin 5
        assert hist.percentile_bin(5.0) == 0     # rank 1 of 10
        assert hist.percentile_bin(90.0) == 0    # rank 9
        assert hist.percentile_bin(99.0) == 5    # rank 10
        assert hist.lower_edge_ns(5) == 5 * MINUTE
        assert hist.upper_edge_ns(5) == 6 * MINUTE

    def test_percentile_rank_in_oob_tail_is_none(self):
        hist = IdleHistogram(bin_width_ns=MINUTE, bins=2)
        hist.observe(30 * SECOND)
        hist.observe(10 * MINUTE)         # OOB
        assert hist.percentile_bin(99.0) is None

    def test_empty_histogram_percentile_is_none(self):
        assert IdleHistogram().percentile_bin(50.0) is None

    def test_reset_clears_everything(self):
        hist = IdleHistogram(bin_width_ns=MINUTE, bins=4)
        hist.observe(30 * SECOND)
        hist.observe(10 * MINUTE)
        hist.reset()
        assert hist.total == 0 and hist.oob == 0
        assert all(count == 0 for count in hist.counts)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            IdleHistogram().observe(-1)

    @pytest.mark.parametrize("kwargs", [
        {"bin_width_ns": 0}, {"bins": 0},
    ])
    def test_bad_construction_rejected(self, kwargs):
        with pytest.raises(ValueError):
            IdleHistogram(**kwargs)


class TestHybridHistogramWindows:
    """Window math vs hand-computed numbers (60 s bins throughout)."""

    def make_policy(self, **kwargs):
        kwargs.setdefault("min_observations", 1)
        return HybridHistogram(**kwargs)

    def test_single_observation_window(self):
        # One 90 s gap -> bin 1 for both percentiles.
        #   prewarm    = 0.85 x lower_edge(1) = 0.85 x 60 s = 51 s
        #   keep-alive = 1.15 x upper_edge(1) - prewarm
        #              = 1.15 x 120 s - 51 s = 138 s - 51 s = 87 s
        policy = self.make_policy()
        policy.observe_gap(7, 90 * SECOND)
        assert policy.decision(7) == PolicyDecision(
            prewarm_ns=51 * SECOND, keep_alive_ns=87 * SECOND
        )

    def test_head_in_bin_zero_stays_resident(self):
        # Sub-minute gaps exist: no prewarm window, keep-alive covers
        # the tail: 1.15 x upper_edge(0) = 69 s.
        policy = self.make_policy()
        policy.observe_gap(1, 30 * SECOND)
        assert policy.decision(1) == PolicyDecision(
            prewarm_ns=None, keep_alive_ns=69 * SECOND
        )

    def test_too_few_observations_falls_back(self):
        policy = HybridHistogram(min_observations=8,
                                 default_keep_ns=600 * SECOND)
        for _ in range(7):
            policy.observe_gap(3, 90 * SECOND)
        assert policy.decision(3) == PolicyDecision(
            prewarm_ns=None, keep_alive_ns=600 * SECOND
        )
        policy.observe_gap(3, 90 * SECOND)   # 8th observation
        assert policy.decision(3).prewarm_ns == 51 * SECOND

    def test_mostly_oob_falls_back(self):
        # 3 of 4 gaps beyond the histogram range (> 2 h): fraction
        # 0.75 > threshold 0.5 -> the percentiles are meaningless.
        policy = self.make_policy()
        policy.observe_gap(2, 90 * SECOND)
        for _ in range(3):
            policy.observe_gap(2, 3 * 3600 * SECOND)
        assert policy.decision(2) == PolicyDecision(
            prewarm_ns=None, keep_alive_ns=600 * SECOND
        )

    def test_tail_rank_in_oob_falls_back(self):
        # 6 in-range + 4 OOB: oob_fraction 0.4 passes the threshold,
        # but the p99 rank (10 of 10) lands in the OOB tail.
        policy = self.make_policy()
        for _ in range(6):
            policy.observe_gap(4, 90 * SECOND)
        for _ in range(4):
            policy.observe_gap(4, 3 * 3600 * SECOND)
        assert policy.decision(4) == PolicyDecision(
            prewarm_ns=None, keep_alive_ns=600 * SECOND
        )

    def test_pattern_change_resets_histogram(self):
        policy = self.make_policy(pattern_miss_limit=4)
        policy.observe_gap(9, 90 * SECOND)
        assert policy.decision(9).prewarm_ns == 51 * SECOND
        for _ in range(4):
            policy.record_outcome(9, warm=False)
        assert policy.histogram(9).total == 0
        assert policy.decision(9) == PolicyDecision(
            prewarm_ns=None, keep_alive_ns=600 * SECOND
        )

    def test_warm_hit_resets_miss_streak(self):
        policy = self.make_policy(pattern_miss_limit=4)
        policy.observe_gap(5, 90 * SECOND)
        for _ in range(3):
            policy.record_outcome(5, warm=False)
        policy.record_outcome(5, warm=True)      # streak broken
        policy.record_outcome(5, warm=False)     # 1 of 4 again
        assert policy.histogram(5).total == 1    # never reset

    def test_new_observation_invalidates_cached_decision(self):
        policy = self.make_policy()
        policy.observe_gap(6, 90 * SECOND)
        first = policy.decision(6)
        policy.observe_gap(6, 30 * SECOND)       # head moves to bin 0
        assert policy.decision(6) != first

    def test_histograms_are_per_function(self):
        policy = self.make_policy()
        policy.observe_gap(0, 90 * SECOND)
        assert policy.decision(1) == PolicyDecision(
            prewarm_ns=None, keep_alive_ns=600 * SECOND
        )

    @pytest.mark.parametrize("kwargs", [
        {"head_pct": 0.0},
        {"head_pct": 60.0, "tail_pct": 50.0},
        {"head_margin": 0.0},
        {"tail_margin": 0.9},
        {"min_observations": 0},
        {"pattern_miss_limit": 0},
    ])
    def test_bad_construction_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HybridHistogram(**kwargs)


class TestMakePolicy:
    def test_spellings(self):
        assert isinstance(make_policy("none"), NoKeepAlive)
        fixed = make_policy("fixed-600")
        assert isinstance(fixed, FixedWindow)
        assert fixed.window_ns == 600 * SECOND
        assert fixed.name == "fixed-600s"
        hybrid = make_policy("hybrid")
        assert isinstance(hybrid, HybridHistogram)
        assert hybrid.bin_width_ns == MINUTE
        narrow = make_policy("hybrid-10")
        assert narrow.bin_width_ns == 10 * SECOND
        assert narrow.name == "hybrid-10"

    @pytest.mark.parametrize("spec", ["lru", "fixed-", "fixed-x", "hybrid-x", ""])
    def test_bad_spellings_rejected(self, spec):
        with pytest.raises(ValueError):
            make_policy(spec)

    def test_fixed_window_must_be_positive(self):
        with pytest.raises(ValueError):
            FixedWindow(0)

    def test_no_keep_alive_decision(self):
        assert NoKeepAlive().decision(0) == PolicyDecision(
            prewarm_ns=None, keep_alive_ns=0
        )


def make_config(**kwargs):
    replay = kwargs.pop("replay", None) or ReplayConfig(
        functions=kwargs.pop("functions", 8),
        duration_s=kwargs.pop("duration_s", 600.0),
        seed=kwargs.pop("seed", 0),
        idle_fraction=0.0,
        periodic_fraction=0.0,
        mean_rate_per_function=kwargs.pop("rate", 0.2),
    )
    base = dict(replay=replay, policy="fixed-600",
                memory_budget_mb=4096.0, sandbox_mb=128.0)
    base.update(kwargs)
    return PrewarmConfig(**base)


class TestPrewarmConfig:
    @pytest.mark.parametrize("kwargs", [
        {"memory_budget_mb": 0.0},
        {"sandbox_mb": 0.0},
        {"exec_ns": -1},
        {"groups": 0},
        {"warmup_s": 600.0},              # == duration
        {"policy": "lru"},                # bad spelling caught up front
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_config(**kwargs)


class TestCellTiering:
    """Cold boot -> HORSE resume -> snapshot restore, hand-driven."""

    def make_cell(self, **kwargs):
        return _Cell(make_config(**kwargs), group=0)

    def test_horse_resume_cost_composition(self):
        # fast_fixed(45) + p2sm_merge(1)(40) + coalesced_update(47).
        assert self.make_cell().horse_resume_ns == 132

    def test_tier_progression(self):
        cell = self.make_cell(policy="fixed-600")
        cell.on_arrival(0, 0)                       # first touch: cold
        cell.on_arrival(10 * SECOND, 0)             # resident: HORSE
        # fixed-600 unloads ~601.5 s after the last completion; arriving
        # at 700 s finds the snapshot, not the paused sandbox.
        cell.on_arrival(700 * SECOND, 0)
        stats = cell.finish()
        assert stats.cold_boots == 1
        assert stats.horse_hits == 1
        assert stats.restores == 1
        assert stats.expiry_unloads == 1
        assert set(stats.latency_counts) == {
            cell.cold_ns, cell.horse_resume_ns, cell.restore_ns
        }
        assert stats.violations == []

    def test_concurrent_arrival_piggybacks(self):
        cell = self.make_cell(exec_ns=10 * SECOND)
        cell.on_arrival(0, 0)
        cell.on_arrival(2 * SECOND, 0)              # still executing
        stats = cell.finish()
        assert stats.concurrent_hits == 1
        assert stats.latency_counts[0] == 1         # zero init latency

    def test_warmup_window_excludes_early_arrivals(self):
        cell = self.make_cell(warmup_s=100.0)
        cell.on_arrival(0, 0)                       # inside warmup
        cell.on_arrival(200 * SECOND, 0)
        stats = cell.finish()
        assert stats.warmup_events == 1
        assert sum(stats.latency_counts.values()) == 1

    def test_prewarm_cycle_end_to_end(self):
        # 10 s bins + 100 s gaps: the histogram picks a prewarm window
        # (~76.5 s) so the sandbox is *gone* between invocations yet
        # *resident* when the next one lands — the timer-trigger win.
        cell = self.make_cell(policy="hybrid-10")
        cell.policy.min_observations = 1
        for tick in range(5):
            cell.on_arrival(tick * 100 * SECOND, 0)
        stats = cell.finish()
        assert stats.cold_boots == 1
        assert stats.prewarm_loads >= 2
        assert stats.horse_hits >= 2
        assert stats.restores == 0
        assert stats.violations == []


class TestMemoryPressure:
    def one_sandbox_cell(self):
        # Budget fits exactly one sandbox.
        return _Cell(
            make_config(memory_budget_mb=128.0, sandbox_mb=128.0), group=0
        )

    def test_in_flight_sandbox_never_evicted(self):
        cell = self.one_sandbox_cell()
        cell.on_arrival(0, 0)                       # cold: busy ~1.5 s
        cell.on_arrival(1000, 1)                    # fn 0 still in flight
        stats_now = cell.stats
        assert stats_now.overcommit_loads == 1      # borrowed, not evicted
        assert stats_now.pressure_evictions == 0
        assert cell.states[0].resident
        assert cell.states[0].busy_until > 1000

    def test_idle_sandboxes_evicted_lru_first(self):
        cell = self.one_sandbox_cell()
        cell.on_arrival(0, 0)
        cell.on_arrival(1000, 1)                    # overcommit (above)
        cell.on_arrival(10 * SECOND, 2)             # both idle now
        stats = cell.finish()
        assert stats.pressure_evictions == 2        # back under budget
        assert not cell.states[0].resident
        assert cell.states[0].has_snapshot          # demoted, not lost
        assert cell.states[2].resident
        assert stats.violations == []

    def test_speculative_prewarm_fails_instead_of_overcommitting(self):
        cell = self.one_sandbox_cell()
        cell.on_arrival(0, 0)                       # holds the budget, busy
        cell.states[1] = _FnState()
        cell._prewarm_load(1000, 1)
        assert cell.stats.prewarm_failed == 1
        assert not cell.states[1].resident
        assert cell.stats.overcommit_loads == 0

    def test_pressured_run_end_to_end_has_no_violations(self):
        config = make_config(
            functions=40, duration_s=600.0, rate=0.5,
            memory_budget_mb=4 * 128.0, policy="fixed-600",
        )
        stats = run_cell(config, 0)
        assert stats.pressure_evictions > 0         # budget really binds
        assert stats.violations == []
        assert stats.peak_resident_mb >= stats.budget_mb


class TestCounterPercentile:
    def test_nearest_rank(self):
        counts = {10: 1, 20: 1}
        assert counter_percentile_ns(counts, 0.0) == 10
        assert counter_percentile_ns(counts, 50.0) == 10
        assert counter_percentile_ns(counts, 51.0) == 20
        assert counter_percentile_ns(counts, 100.0) == 20

    def test_exact_values_never_interpolated(self):
        # 99 fast + 1 slow: every percentile names a real tier.
        counts = {132: 99, 1_300_000: 1}
        assert counter_percentile_ns(counts, 99.0) == 132
        assert counter_percentile_ns(counts, 99.5) == 1_300_000

    def test_empty_is_zero(self):
        assert counter_percentile_ns({}, 99.0) == 0

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            counter_percentile_ns({1: 1}, 101.0)


class TestShardInvariance:
    """Workers are an execution knob: same seed => byte-identical."""

    def make_config(self):
        return make_config(
            functions=48, duration_s=300.0, rate=0.3,
            groups=4, memory_budget_mb=4 * 4 * 128.0, policy="fixed-120",
        )

    def test_render_identical_across_worker_counts(self):
        config = self.make_config()
        serial = render_replay(run_replay(config, shards=1))
        forked = render_replay(run_replay(config, shards=2, parallel=True))
        inline4 = render_replay(run_replay(config, shards=4, parallel=False))
        assert serial == forked == inline4

    def test_cells_arrive_in_group_order(self):
        config = self.make_config()
        result = run_replay(config, shards=3, parallel=False)
        assert [cell.group for cell in result.cells] == [0, 1, 2, 3]

    def test_bad_shards_rejected(self):
        with pytest.raises(ValueError):
            run_replay(self.make_config(), shards=0)

    def test_bad_group_rejected(self):
        with pytest.raises(ValueError):
            run_cell(self.make_config(), group=4)


class TestRenderReplay:
    def test_render_mentions_the_load_bearing_numbers(self):
        config = make_config(functions=16, duration_s=300.0)
        result = run_replay(config)
        text = render_replay(result)
        assert "HORSE resume" in text
        assert "fixed-600" in text
        assert f"events           {result.events}" in text
        assert "invariant violations: 0" in text


class TestAutoscaleProtection:
    """S2: the autoscaler's Little's-law pool target drives a protected
    quota in the victim scan — a function the tracker still wants warm
    is spared, at the cost of an overcommit."""

    def protected_cell(self, **kwargs):
        kwargs.setdefault("autoscale_protect", True)
        return _Cell(
            make_config(
                memory_budget_mb=128.0, sandbox_mb=128.0, **kwargs
            ),
            group=0,
        )

    def test_recently_active_function_is_spared(self):
        cell = self.protected_cell(protect_window_s=60.0)
        cell.on_arrival(0, 0)                       # fn 0 hot
        cell.on_arrival(10 * SECOND, 1)             # fn 0 idle but in-window
        assert cell.stats.protected_skips >= 1
        assert cell.states[0].resident              # spared
        assert cell.stats.pressure_evictions == 0
        assert cell.stats.overcommit_loads == 1     # borrowed instead

    def test_protection_expires_with_the_rate_window(self):
        cell = self.protected_cell(protect_window_s=30.0)
        cell.on_arrival(0, 0)
        cell.on_arrival(100 * SECOND, 1)            # window long gone
        assert not cell.states[0].resident          # evicted normally
        assert cell.stats.pressure_evictions == 1
        assert cell.stats.overcommit_loads == 0

    def test_default_off_keeps_legacy_eviction(self):
        cell = _Cell(
            make_config(memory_budget_mb=128.0, sandbox_mb=128.0), group=0
        )
        assert cell.trackers is None
        cell.on_arrival(0, 0)
        cell.on_arrival(10 * SECOND, 1)
        assert cell.stats.protected_skips == 0
        assert not cell.states[0].resident          # legacy LRU eviction

    @pytest.mark.parametrize("kwargs", [
        {"protect_window_s": 0.0},
        {"protect_headroom": 0.5},
    ])
    def test_bad_protection_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_config(autoscale_protect=True, **kwargs)

    def test_protected_run_end_to_end_stays_sound(self):
        config = make_config(
            functions=40, duration_s=600.0, rate=0.5,
            memory_budget_mb=4 * 128.0, policy="fixed-600",
            autoscale_protect=True, protect_window_s=30.0,
        )
        stats = run_cell(config, 0)
        assert stats.violations == []
        assert stats.protected_skips > 0            # protection engaged
