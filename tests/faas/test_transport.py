"""Trigger transport models."""

import random

import pytest

from repro.faas.transport import (
    ALL_TRANSPORTS,
    KERNEL_BYPASS,
    LOCAL,
    NANO_FABRIC,
    TCP,
    TransportKind,
    TransportModel,
    transport_by_name,
)


class TestModels:
    def test_local_is_free(self):
        assert LOCAL.sample_ns(random.Random(0)) == 0

    def test_latency_ordering(self):
        rng = random.Random(1)
        samples = {
            model.kind: sum(model.sample_ns(rng) for _ in range(200)) / 200
            for model in ALL_TRANSPORTS
        }
        assert (
            samples[TransportKind.LOCAL]
            < samples[TransportKind.NANO_FABRIC]
            < samples[TransportKind.KERNEL_BYPASS]
            < samples[TransportKind.TCP]
        )

    def test_samples_never_negative(self):
        model = TransportModel(TransportKind.TCP, base_ns=100, jitter_rel=5.0)
        rng = random.Random(2)
        assert all(model.sample_ns(rng) >= 0 for _ in range(500))

    def test_mean_near_base(self):
        rng = random.Random(3)
        samples = [TCP.sample_ns(rng) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(
            TCP.base_ns, rel=0.05
        )

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            TransportModel(TransportKind.TCP, base_ns=-1)

    def test_lookup_by_name(self):
        assert transport_by_name("tcp") is TCP
        assert transport_by_name("Kernel-Bypass") is KERNEL_BYPASS

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            transport_by_name("carrier-pigeon")


class TestSensitivityStudy:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.experiments.transport_sensitivity import (
            run_transport_sensitivity,
        )

        return run_transport_sensitivity(invocations=30, seed=0)

    def test_benefit_fades_with_slower_transport(self, study):
        """The paper's §2 premise, quantified: HORSE's advantage only
        exists when the trigger path is ns/us-scale."""
        order = ("local", "nano-fabric", "kernel-bypass", "tcp")
        benefits = [study.horse_benefit_pct(t) for t in order]
        assert benefits == sorted(benefits, reverse=True)
        assert benefits[0] > 30.0   # decisive on local triggers
        assert benefits[-1] < 1.0   # irrelevant behind TCP

    def test_overhead_grows_with_transport(self, study):
        from repro.faas.invocation import StartType

        order = ("local", "nano-fabric", "kernel-bypass", "tcp")
        for scenario in (StartType.WARM, StartType.HORSE):
            overheads = [
                study.cell(t, scenario).mean_overhead_pct for t in order
            ]
            assert overheads == sorted(overheads)
