"""setup.py shim for environments without the `wheel` package
(pip's modern editable path needs bdist_wheel; `setup.py develop`
does not)."""

from setuptools import setup

setup()
