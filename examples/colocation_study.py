#!/usr/bin/env python3
"""Colocation study: uLL churn next to long-running functions.

A compact version of the paper's §5.4 experiment: thumbnail invocations
(driven by an Azure-like trace) share the host with 10 uLL sandboxes
being resumed 10 times per second.  Prints the thumbnail latency
distribution under vanilla and HORSE resumes and the p99 effect of
HORSE's merge threads.

Run:  python examples/colocation_study.py
"""

from repro.analysis.figures import render_colocation
from repro.experiments.colocation import run_colocation


def main() -> None:
    print("Running §5.4 colocation: vanilla vs HORSE, uLL vCPUs in {1, 36}")
    print("(thumbnails from an Azure-like 30 s trace; 10 uLL resumes/s)\n")
    result = run_colocation(vcpu_counts=(1, 36), seed=0)
    print(render_colocation(result))

    worst = 36
    print(
        f"\np99 overhead at {worst} uLL vCPUs: "
        f"{result.p99_overhead_us(worst):.1f} us "
        f"({result.p99_overhead_pct(worst):.5f} %) — the paper reports "
        "~30 us (0.00107 %),"
    )
    print(
        "caused by a P2SM merge thread occasionally preempting a "
        "long-running function;"
    )
    print(
        f"mean delta: {result.mean_delta_us(worst):.2f} us, "
        f"p95 delta: {result.p95_delta_us(worst):.2f} us "
        "(isolation on the reserved run queue keeps both ~0)."
    )


if __name__ == "__main__":
    main()
