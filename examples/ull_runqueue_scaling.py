#!/usr/bin/env python3
"""Scaling the number of reserved ull_runqueues (paper §4.1.3).

"In the case of a high frequency of uLL workload triggers, we can
increase the number of ull_runqueue ... the choice of the associated
run queue considers the number of paused sandboxes already associated
with each ull_runqueue to perform load balancing."

This example pauses a burst of uLL sandboxes against hosts reserving
1, 2 and 4 run queues and shows (a) the pause-time balancing and
(b) that the resume fast path stays O(1) regardless.

Run:  python examples/ull_runqueue_scaling.py
"""

from repro.core import HorsePauseResume
from repro.hypervisor import Sandbox, firecracker_platform

SANDBOXES = 12
VCPUS = 8


def run_with_queues(reserved: int) -> None:
    virt = firecracker_platform(reserved_ull_cores=reserved)
    horse = HorsePauseResume(virt.host, virt.policy, virt.costs)

    boxes = []
    for _ in range(SANDBOXES):
        sandbox = Sandbox(vcpus=VCPUS, memory_mb=512, is_ull=True)
        virt.vanilla.place_initial(sandbox, 0)
        horse.pause(sandbox, 0)
        boxes.append(sandbox)

    counts = horse.ull.assignment_counts()
    resume_ns = [horse.resume(sandbox, 0).total_ns for sandbox in boxes]

    balance = ", ".join(f"q{qid}:{n}" for qid, n in sorted(counts.items()))
    flat = max(resume_ns) == min(resume_ns)
    print(
        f"{reserved} ull_runqueue(s): assignments [{balance}]  "
        f"resume = {resume_ns[0]} ns per sandbox "
        f"({'flat' if flat else 'varying'})"
    )


def main() -> None:
    print(f"Pausing {SANDBOXES} uLL sandboxes ({VCPUS} vCPUs each), then "
          "resuming all:\n")
    for reserved in (1, 2, 4):
        run_with_queues(reserved)
    print("\nBalancing spreads paused sandboxes evenly across reserved")
    print("queues; the HORSE resume stays constant-time either way.")


if __name__ == "__main__":
    main()
