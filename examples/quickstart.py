#!/usr/bin/env python3
"""Quickstart: deploy a uLL function and compare the four start paths.

Deploys the paper's Category-1 firewall on a simulated Firecracker
host, then triggers it through each start strategy — cold boot,
FaaSnap-style restore, vanilla warm resume, and the HORSE hot resume —
printing the initialization latency and its share of the pipeline.

Run:  python examples/quickstart.py
"""

from repro.faas import FaaSPlatform, FunctionSpec, StartType
from repro.sim.units import format_duration, seconds
from repro.workloads import FirewallWorkload


def main() -> None:
    faas = FaaSPlatform.build("firecracker", seed=42)
    faas.register(FunctionSpec("firewall", FirewallWorkload(), vcpus=1,
                               memory_mb=512))

    print("Deployed 'firewall' (Category 1 uLL, ~17 us mean execution)\n")
    print(f"{'start':10s}  {'initialization':>16s}  {'execution':>12s}  "
          f"{'init % of pipeline':>18s}")

    for start_type in (StartType.COLD, StartType.RESTORE,
                       StartType.WARM, StartType.HORSE):
        if start_type in (StartType.WARM, StartType.HORSE):
            # Warm paths need a pooled sandbox: a HORSE pause precomputes
            # the P2SM structures; a vanilla pause does not.
            faas.provision_warm(
                "firewall", count=1, use_horse=start_type is StartType.HORSE
            )
        invocation = faas.trigger("firewall", start_type, run_logic=True)
        faas.engine.run(until=faas.engine.now + seconds(3))
        assert invocation.completed and invocation.error is None
        print(
            f"{start_type.value:10s}  "
            f"{format_duration(invocation.initialization_ns):>16s}  "
            f"{format_duration(invocation.execution_ns):>12s}  "
            f"{invocation.init_percentage:17.2f}%"
        )

    print("\nHORSE makes the sandbox ready in ~130 ns — the paper's")
    print("hot-resume fast path (P2SM + coalesced load update).")


if __name__ == "__main__":
    main()
