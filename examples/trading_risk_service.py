#!/usr/bin/env python3
"""Finance + ML scoring on a uLL FaaS platform (paper §1's motivation).

Two of the intro's motivating uLL services side by side:

* **order-risk** — pre-trade risk checks on the trading hot path
  (Category-2 envelope, ~1.8 µs), and
* **ml-inference** — a per-order scoring model (Category-1 envelope,
  ~12 µs) that flags suspicious flow.

Every incoming order is risk-checked; accepted orders are then scored.
The example contrasts the end-to-end order handling latency when the
platform uses vanilla warm starts vs HORSE hot resumes — on µs-scale
stages, the ~1 µs-per-stage vanilla resume is the difference between a
sub-5 µs and a sub-3 µs p50 risk path.

Run:  python examples/trading_risk_service.py
"""

import random

from repro.faas import FaaSPlatform, FunctionSpec, StartType
from repro.metrics.stats import Summary
from repro.sim.units import SECOND, seconds, to_microseconds
from repro.traces import PoissonArrivals
from repro.workloads import MlInferenceWorkload, OrderRiskWorkload

ORDERS_PER_SECOND = 500.0
DURATION_S = 1.0
POOL = 6


def run_mode(start_type: StartType, seed: int = 21):
    faas = FaaSPlatform.build("firecracker", seed=seed)
    risk = OrderRiskWorkload()
    scorer = MlInferenceWorkload()
    faas.register(FunctionSpec("order-risk", risk, provisioned_concurrency=POOL))
    faas.register(FunctionSpec("ml-inference", scorer,
                               provisioned_concurrency=POOL))
    use_horse = start_type is StartType.HORSE
    faas.provision_warm("order-risk", count=POOL, use_horse=use_horse)
    faas.provision_warm("ml-inference", count=POOL, use_horse=use_horse)

    order_rng = random.Random(5)
    latencies_us = []
    accepted = rejected = flagged = 0

    def handle_order() -> None:
        nonlocal accepted, rejected, flagged
        order = risk.example_payload(order_rng)
        risk_inv = faas.trigger("order-risk", start_type)
        decision = risk.execute(order)
        if not decision.accepted:
            rejected += 1
            faas.engine.schedule_at(
                risk_inv.exec_end_ns,
                lambda: latencies_us.append(to_microseconds(risk_inv.total_ns)),
            )
            return
        accepted += 1
        score_inv = faas.trigger("ml-inference", start_type)
        result = scorer.execute(scorer.example_payload(order_rng))
        if result.flagged:
            flagged += 1
        end = max(risk_inv.exec_end_ns, score_inv.exec_end_ns)
        faas.engine.schedule_at(
            end,
            lambda: latencies_us.append(
                to_microseconds(risk_inv.total_ns + score_inv.total_ns)
            ),
        )

    arrivals = PoissonArrivals(ORDERS_PER_SECOND, random.Random(9))
    for when in arrivals.arrivals(0, round(DURATION_S * SECOND)):
        faas.engine.schedule_at(when, handle_order)
    faas.engine.run(until=seconds(DURATION_S + 1))
    return Summary.of(latencies_us), accepted, rejected, flagged


def main() -> None:
    print(f"Order flow: {ORDERS_PER_SECOND:.0f} orders/s for {DURATION_S:.0f} s, "
          "risk check -> (if accepted) ML scoring\n")
    results = {}
    for start_type in (StartType.WARM, StartType.HORSE):
        summary, accepted, rejected, flagged = run_mode(start_type)
        results[start_type] = summary
        print(f"{start_type.value:6s}: {accepted} accepted / {rejected} rejected "
              f"/ {flagged} flagged")
        print(f"        latency us: mean {summary.mean:6.2f}  "
              f"p50 {summary.p50:6.2f}  p95 {summary.p95:6.2f}  "
              f"p99 {summary.p99:6.2f}")
    saved = results[StartType.WARM].p50 - results[StartType.HORSE].p50
    print(f"\nHORSE removes ~{saved:.2f} us from the p50 order path "
          "(one vanilla resume per stage).")


if __name__ == "__main__":
    main()
