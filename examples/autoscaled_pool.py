#!/usr/bin/env python3
"""Autoscaled provisioned concurrency under a bursty trace.

The paper's uLL story relies on an always-warm pool; this example shows
the operational side: a :class:`~repro.faas.autoscaler.PoolAutoscaler`
watches the trigger rate of a uLL function driven by a bursty
Azure-like arrival stream and resizes the HORSE-paused pool (Little's
law + headroom).  Compare the pool's tracking of the offered load, the
warm hit rate, and the number of cold fallbacks against a static
1-sandbox pool.

Run:  python examples/autoscaled_pool.py
"""

import random

from repro.faas import FaaSPlatform, FunctionSpec, StartType
from repro.faas.autoscaler import AutoscalerConfig, PoolAutoscaler
from repro.sim.units import SECOND, milliseconds, seconds
from repro.traces.azure import AzureTraceConfig, synthesize_trace
from repro.workloads import SysbenchCpuWorkload

DURATION_S = 60.0


def run(autoscale: bool):
    faas = FaaSPlatform.build("firecracker", seed=17)
    # ~100 ms rounds: long enough that bursts overlap and the pool
    # actually drains (us-scale uLL functions return instantly).
    faas.register(FunctionSpec("fw", SysbenchCpuWorkload(), memory_mb=128))
    faas.provision_warm("fw", count=1)

    scaler = None
    if autoscale:
        scaler = PoolAutoscaler(
            faas,
            "fw",
            # Warm sandboxes cycle (resume + exec + pause) in ~ms at the
            # platform level; use a coarse 100 ms busy estimate so the
            # pool holds a few sandboxes through bursts.
            expected_busy_ns=milliseconds(100),
            config=AutoscalerConfig(
                window_ns=seconds(5), period_ns=milliseconds(500),
                # bursts run ~3x the average rate (MMPP with 30 %
                # duty cycle), so size for the burst, not the mean
                headroom=4.0, min_pool=1, max_pool=16,
            ),
        )
        scaler.start()

    trace = synthesize_trace(
        AzureTraceConfig(
            functions=1, duration_s=DURATION_S,
            mean_rate_per_function=20.0, burst_on_fraction=0.3,
        ),
        random.Random(5),
    )
    hits = colds = 0
    pool_sizes = []

    def fire() -> None:
        nonlocal hits, colds
        if scaler is not None:
            scaler.observe_trigger()
        if faas.pool.size("fw") > 0:
            faas.trigger("fw", StartType.WARM)
            hits += 1
        else:
            faas.trigger("fw", StartType.COLD)
            colds += 1
        pool_sizes.append(faas.pool.size("fw"))

    for when in trace.merged_timestamps():
        faas.engine.schedule_at(when, fire)
    faas.engine.run(until=seconds(DURATION_S + 5))

    label = "autoscaled" if autoscale else "static(1)"
    total = hits + colds
    print(
        f"{label:11s} triggers={total:4d}  warm hit rate="
        f"{hits / total:6.1%}  cold fallbacks={colds:3d}  "
        f"final target={scaler.current_target if scaler else 1}"
    )


def main() -> None:
    print(f"Bursty uLL traffic (~20/s for {DURATION_S:.0f} s) against a "
          "HORSE-paused warm pool:\n")
    run(autoscale=False)
    run(autoscale=True)
    print("\nThe autoscaler roughly halves the cold fallbacks by sizing the")
    print("HORSE-paused pool for the bursts; the residue is burst-onset")
    print("misses inherent to reactive scaling (the rate window must see")
    print("the burst before the pool can grow).")


if __name__ == "__main__":
    main()
