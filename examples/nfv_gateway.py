#!/usr/bin/env python3
"""NFV gateway scenario: a firewall -> NAT chain on FaaS.

The paper motivates uLL FaaS with network functions (its Category 1 and
2 workloads are a stateless firewall and a NAT).  This example deploys
both as uLL functions with HORSE-provisioned warm pools, drives them
with a Poisson packet stream, chains them (only packets the firewall
admits reach the NAT), and reports the end-to-end per-packet pipeline
latency — with sandbox initialization included, which is the part HORSE
collapses from ~1.1 us to ~130 ns per stage.

Run:  python examples/nfv_gateway.py
"""

import random

from repro.faas import FaaSPlatform, FunctionSpec, StartType
from repro.metrics.stats import Summary
from repro.sim.units import SECOND, seconds, to_microseconds
from repro.traces import PoissonArrivals
from repro.workloads import FirewallWorkload, NatWorkload
from repro.workloads.firewall import RequestHeader

DURATION_S = 2.0
PACKET_RATE_PER_S = 200.0
POOL_SIZE = 4


def main() -> None:
    faas = FaaSPlatform.build("firecracker", seed=7)
    firewall = FirewallWorkload()
    # Admit web traffic from the 10.0.0/24 subnet; NAT it to a backend.
    nat = NatWorkload()
    faas.register(FunctionSpec("firewall", firewall, vcpus=1, memory_mb=512,
                               provisioned_concurrency=POOL_SIZE))
    faas.register(FunctionSpec("nat", nat, vcpus=1, memory_mb=512,
                               provisioned_concurrency=POOL_SIZE))
    faas.provision_warm("firewall", count=POOL_SIZE, use_horse=True)
    faas.provision_warm("nat", count=POOL_SIZE, use_horse=True)

    packet_rng = random.Random(99)
    arrivals = PoissonArrivals(PACKET_RATE_PER_S, random.Random(3))

    chain_latencies_us = []
    admitted = dropped = 0

    def handle_packet() -> None:
        nonlocal admitted, dropped
        header = firewall.example_payload(packet_rng)
        # Stage 1: firewall decides. (Function logic runs for real.)
        fw_invocation = faas.trigger("firewall", StartType.HORSE)
        decision = firewall.execute(header)
        if not decision.allowed:
            dropped += 1
            return
        admitted += 1
        # Stage 2: admitted packets are rewritten by the NAT.
        nat_invocation = faas.trigger("nat", StartType.HORSE)
        nat_header = nat.example_payload(packet_rng)
        rewritten = nat.execute(nat_header)
        assert rewritten.dst_ip.startswith("10.")

        def record() -> None:
            # End-to-end = both stages' init + execution windows.
            total_ns = fw_invocation.total_ns + nat_invocation.total_ns
            chain_latencies_us.append(to_microseconds(total_ns))

        faas.engine.schedule_at(
            max(fw_invocation.exec_end_ns, nat_invocation.exec_end_ns), record
        )

    for when in arrivals.arrivals(0, round(DURATION_S * SECOND)):
        faas.engine.schedule_at(when, handle_packet)
    faas.engine.run(until=seconds(DURATION_S + 1))

    summary = Summary.of(chain_latencies_us)
    print(f"packets: {admitted + dropped} "
          f"(admitted {admitted}, dropped {dropped})")
    print(f"firewall+NAT chain latency (us), init included:")
    print(f"  mean {summary.mean:8.2f}   p50 {summary.p50:8.2f}   "
          f"p95 {summary.p95:8.2f}   p99 {summary.p99:8.2f}")
    init_shares = [
        inv.init_percentage for inv in faas.gateway.completed_invocations()
    ]
    print(f"sandbox init share of each stage: "
          f"mean {sum(init_shares) / len(init_shares):.2f}% "
          f"(HORSE keeps it ~1% even at 200 packets/s)")
    print(f"pool hits: {faas.pool.hits}, misses: {faas.pool.misses}")


if __name__ == "__main__":
    main()
