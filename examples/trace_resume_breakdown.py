#!/usr/bin/env python3
"""Walkthrough: tracing the resume hot path with :mod:`repro.obs`.

The observability layer answers "where did this resume spend its
nanoseconds?" without touching the experiment code.  This example:

1. builds a FaaS platform inside an ``activate(...)`` block, so every
   hypervisor component picks up the tracer and metric registry;
2. fires one vanilla-resume (WARM) and one HORSE invocation;
3. walks the recorded span tree — invocation -> resume -> the paper's
   six steps — and prints the per-phase breakdown;
4. reconciles the phase histograms against the span totals (they match
   exactly: the simulator charges costs while the clock stands still);
5. exports Chrome-trace JSON (load it in https://ui.perfetto.dev) and
   lossless JSONL next to each other in a temp directory.

Run:  python examples/trace_resume_breakdown.py
"""

import os
import tempfile

from repro.faas import FaaSPlatform, FunctionSpec, StartType
from repro.obs import (
    RESUME_DISPATCH_NS,
    RESUME_LOAD_UPDATE_NS,
    RESUME_MERGE_NS,
    RESUME_TOTAL_NS,
    Observability,
    activate,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.units import seconds
from repro.workloads import FirewallWorkload


def trace_two_resumes() -> Observability:
    """One warm (vanilla resume) and one HORSE invocation, traced."""
    obs = Observability()
    with activate(obs):
        faas = FaaSPlatform.build("firecracker", seed=11)
        faas.register(FunctionSpec("fw", FirewallWorkload(), vcpus=2))
        for use_horse, start in ((False, StartType.WARM),
                                 (True, StartType.HORSE)):
            faas.provision_warm("fw", count=1, use_horse=use_horse)
            faas.trigger("fw", start)
            faas.engine.run(until=faas.engine.now + seconds(1))
    return obs


def print_span_tree(obs: Observability) -> None:
    tracer = obs.tracer
    print("span tree (one invocation per root):")
    for root in tracer.roots():
        print(f"  {root.name:<14s} {root.duration_ns:>8d} ns "
              f"{root.attrs.get('path', root.attrs.get('start', ''))}")
        for child in tracer.children_of(root):
            print(f"    {child.name:<12s} {child.duration_ns:>8d} ns")
            for grandchild in tracer.children_of(child):
                print(f"      {grandchild.name:<10s} "
                      f"{grandchild.duration_ns:>8d} ns")


def print_phase_breakdown(obs: Observability) -> None:
    histograms = obs.metrics.histograms()
    total = histograms[RESUME_TOTAL_NS].sum
    print("\nresume phase histograms (all resumes pooled):")
    for name in (RESUME_MERGE_NS, RESUME_LOAD_UPDATE_NS, RESUME_DISPATCH_NS):
        histogram = histograms[name]
        share = 100.0 * histogram.sum / total if total else 0.0
        print(f"  {name:<24s} {histogram.sum:>10.0f} ns  ({share:5.1f} %)")
    parts = sum(histograms[n].sum for n in
                (RESUME_MERGE_NS, RESUME_LOAD_UPDATE_NS, RESUME_DISPATCH_NS))
    print(f"  {'sum of phases':<24s} {parts:>10.0f} ns")
    print(f"  {RESUME_TOTAL_NS:<24s} {total:>10.0f} ns  (exact match)")
    assert parts == total


def export_traces(obs: Observability) -> None:
    out_dir = tempfile.mkdtemp(prefix="repro-trace-")
    chrome_path = os.path.join(out_dir, "resume.trace.json")
    jsonl_path = os.path.join(out_dir, "resume.trace.jsonl")
    write_chrome_trace(obs.tracer, chrome_path)
    write_jsonl(obs.tracer, jsonl_path)
    round_trip = to_chrome_trace(read_jsonl(jsonl_path))
    assert round_trip == to_chrome_trace(obs.tracer)
    print(f"\nwrote {chrome_path} (open in Perfetto / chrome://tracing)")
    print(f"wrote {jsonl_path} (JSONL round-trips losslessly)")


def main() -> None:
    obs = trace_two_resumes()
    print(f"recorded {len(obs.tracer)} spans\n")
    print_span_tree(obs)
    print_phase_breakdown(obs)
    export_traces(obs)


if __name__ == "__main__":
    main()
