#!/usr/bin/env python3
"""The paper's argument, end to end, in one runnable script.

Walks the HORSE paper's narrative §2 -> §5 against this reproduction:

1. §2  — even warm starts cost uLL workloads up to ~61 % of their
         pipeline (Table 1 / Figure 1);
2. §3  — the resume is dominated by two operations: the sorted merge
         of each vCPU and the per-vCPU load update (Figure 2);
3. §4  — P2SM + coalescing attack exactly those two steps;
4. §5  — the result: a flat ~130 ns resume (Figure 3), sub-1 % init
         shares (Figure 4), negligible overhead (§5.2/§5.4).

Run:  python examples/paper_walkthrough.py   (~10 s)
"""

from repro.analysis.figures import render_figure2, render_figure3, render_figure4
from repro.analysis.tables import render_table1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.table1 import run_table1
from repro.faas.invocation import StartType


def section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    reps = 5
    sweep = (1, 8, 36)

    section("§2 — Warm starts are not enough for uLL workloads")
    table1 = run_table1(repetitions=reps)
    print(render_table1(table1))
    worst = table1.cell("array-filter", StartType.WARM).mean_init_pct
    print(f"\nEven a warm start spends {worst:.0f} % of a Category-3 "
          "pipeline just getting the sandbox ready.")

    section("§3 — Where the resume time goes")
    figure2 = run_figure2(vcpu_counts=sweep, repetitions=reps)
    print(render_figure2(figure2))
    print(f"\nSteps 4 (sorted merge) + 5 (load update) are "
          f"{100 * figure2.points[0].hot_share:.1f}-"
          f"{100 * figure2.points[-1].hot_share:.1f} % of the resume and "
          "grow with the vCPU count -> they are the target.")

    section("§4/§5.1 — HORSE: P2SM + coalesced load updates")
    figure3 = run_figure3(vcpu_counts=sweep, repetitions=reps)
    print(render_figure3(figure3))
    print(f"\nP2SM replaces the per-vCPU O(n) merge with one parallel "
          f"splice ({100 * figure3.max_improvement('ppsm'):.0f} % alone); "
          f"coalescing fuses n load updates into one "
          f"({100 * figure3.max_improvement('coal'):.0f} % alone); together "
          f"the resume is flat at "
          f"{figure3.mean_ns('horse', 1):.0f} ns for any vCPU count.")

    section("§5.3 — What that buys uLL workloads")
    figure4 = run_figure4(repetitions=reps)
    print(render_figure4(figure4))
    low, high = figure4.horse_init_pct_range()
    print(f"\nSandbox readiness drops to {low:.2f}-{high:.2f} % of the "
          f"pipeline — {figure4.horse_advantage(StartType.COLD):.0f}x less "
          "initialization overhead than a cold start.")

    print("\nDone. Full evaluation: python -m repro report; "
          "claim checks: python -m repro validate.")


if __name__ == "__main__":
    main()
